"""Deterministic fault injection for the execution stack.

The paper's systems keep working *because* they assume components fail:
ECC corrects flipped bits, PARA tolerates missed neighbors, refresh
scaling trades margin for correctness.  The experiment infrastructure
deserves the same discipline — and the only way to trust recovery code
is to execute it on demand.  This module injects the faults the
hardened :class:`~repro.experiments.runner.ExperimentRunner` claims to
survive:

``kill``
    SIGKILL the current *worker* process before the job body runs
    (never the parent — a degraded-to-serial runner must not shoot
    itself).  Exercises ``BrokenProcessPool`` recovery.
``hang``
    Sleep ``secs`` (default 30) before the job body, exceeding any
    sane per-job timeout.  Exercises deadline enforcement.
``exc``
    Raise :class:`ChaosTransientError` — a retryable failure.
    Exercises the backoff/retry path.
``torn``
    Tear the result-cache write for the matching job (the final file
    holds truncated JSON, as if the writer died mid-write).  Exercises
    corrupt-entry quarantine.
``ledger``
    Fail one run-ledger append with an injected ``OSError``.
    Exercises the ledger's best-effort contract.
``torn_journal``
    Tear a service job-journal append (the record goes down truncated,
    with no trailing newline, as if the daemon was SIGKILLed
    mid-write).  ``name=`` filters on the journal *event* being
    appended (``submit``/``start``/``done``/``cancel``).  Exercises
    torn-tail-tolerant replay on daemon restart.
``corrupt``
    Mutate live *simulator state* — flip a stored DRAM cell bit,
    alias two FTL mapping entries, skew a refresh cursor — at a
    sanitizer check site for the subsystem named by ``sub=``.
    Exercises the sanitizer: each registered invariant class has a
    paired injector in :mod:`repro.chaos.state`, and the negative-test
    suite proves every injected corruption is detected at
    ``REPRO_SANITIZE=full`` and attributed to the right subsystem.

Faults are **declared, not random** (unless you ask): the schedule
lives in the ``REPRO_CHAOS`` environment variable so it reaches pool
workers for free, and every entry can pin the exact job it hits::

    REPRO_CHAOS="kill:seed=1638297,hang:seed=902114:secs=30,ledger"

Grammar: entries separated by ``,``; fields within an entry separated
by ``:``.  The first field is the fault kind; the rest are ``key=value``
filters/knobs — ``name=`` (experiment), ``seed=`` (job seed),
``secs=`` (hang duration), ``rate=`` (seeded-random firing probability),
``sub=`` (target subsystem for ``corrupt``)
and ``once=0`` (allow repeat firing).  A bare ``seed=N`` entry sets the
plan-level chaos seed that drives ``rate=`` draws, which are computed
as a SHA-256 hash of ``(chaos seed, entry, job)`` — the same schedule
replays exactly, in any process, on any machine.

Every fault fires **at most once** by default.  Once-firing is
coordinated across processes through marker files in the
``REPRO_CHAOS_STATE`` directory (claimed with ``O_CREAT | O_EXCL``, so
two workers cannot both claim one fault); without a state directory the
guarantee is per-process only.  The markers double as the authoritative
injection count — a SIGKILLed worker cannot report telemetry, but its
marker survives.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry import runtime as telem

__all__ = [
    "ENV_CHAOS",
    "ENV_CHAOS_STATE",
    "FAULT_KINDS",
    "ChaosTransientError",
    "FaultSpec",
    "ChaosPlan",
    "current_plan",
    "enabled",
    "fail_ledger_append",
    "in_worker",
    "injected_counts",
    "on_job_start",
    "reset",
    "tear_cache_write",
    "tear_journal_append",
]

ENV_CHAOS = "REPRO_CHAOS"
ENV_CHAOS_STATE = "REPRO_CHAOS_STATE"

FAULT_KINDS = ("kill", "hang", "exc", "torn", "ledger", "corrupt",
               "torn_journal")

#: Default sleep for ``hang`` faults — long enough to trip any
#: reasonable per-job timeout, short enough that a runaway test dies
#: of its own accord.
DEFAULT_HANG_SECS = 30.0


class ChaosTransientError(RuntimeError):
    """The injected *transient* failure: retryable by classification."""


@dataclass
class FaultSpec:
    """One declared fault: a kind plus its filters and knobs."""

    kind: str
    index: int  # position in the plan; part of the marker/draw identity
    name: Optional[str] = None
    seed: Optional[int] = None
    secs: float = DEFAULT_HANG_SECS
    rate: float = 1.0
    once: bool = True
    sub: Optional[str] = None  # target subsystem for ``corrupt``

    def matches(self, name: Optional[str], seed: Optional[int]) -> bool:
        if self.name is not None and self.name != name:
            return False
        if self.seed is not None and self.seed != seed:
            return False
        return True


def _parse_entry(entry: str, index: int) -> FaultSpec:
    fields = [f.strip() for f in entry.split(":") if f.strip()]
    kind = fields[0]
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown chaos fault kind {kind!r} in entry {entry!r}; "
            f"expected one of {', '.join(FAULT_KINDS)}"
        )
    spec = FaultSpec(kind=kind, index=index)
    for f in fields[1:]:
        key, sep, value = f.partition("=")
        if not sep:
            raise ValueError(f"malformed chaos field {f!r} in entry {entry!r}")
        if key == "name":
            spec.name = value
        elif key == "seed":
            spec.seed = int(value)
        elif key == "secs":
            spec.secs = float(value)
        elif key == "rate":
            spec.rate = float(value)
            if not 0.0 <= spec.rate <= 1.0:
                raise ValueError(f"chaos rate must be in [0, 1], got {spec.rate}")
        elif key == "once":
            spec.once = value not in ("0", "false", "no")
        elif key == "sub":
            spec.sub = value
        else:
            raise ValueError(f"unknown chaos field {key!r} in entry {entry!r}")
    if kind == "corrupt" and spec.sub is None:
        raise ValueError(
            f"corrupt entry {entry!r} needs a sub=<subsystem> target "
            f"(e.g. corrupt:sub=flash.ftl)"
        )
    return spec


class ChaosPlan:
    """A parsed fault schedule plus its firing state."""

    def __init__(self, specs: List[FaultSpec], chaos_seed: int = 0,
                 state_dir: Optional[Path] = None):
        self.specs = specs
        self.chaos_seed = chaos_seed
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self._local_claims: set = set()
        self._local_counts: Dict[str, int] = {}
        self._fire_serial = 0
        # (name, seed) of the job currently executing in this process,
        # recorded by on_job_start so mid-job injection sites (cache
        # writes, sanitizer checks) can honor name=/seed= filters.
        self.job_context: Tuple[Optional[str], Optional[int]] = (None, None)

    @classmethod
    def parse(cls, spec: str, state_dir: Optional[str] = None) -> "ChaosPlan":
        specs: List[FaultSpec] = []
        chaos_seed = 0
        for index, raw in enumerate(s for s in spec.split(",") if s.strip()):
            entry = raw.strip()
            if entry.startswith("seed="):
                chaos_seed = int(entry[len("seed="):])
                continue
            specs.append(_parse_entry(entry, index))
        return cls(specs, chaos_seed=chaos_seed, state_dir=state_dir)

    # -- firing ---------------------------------------------------------
    def pick(self, kind: str, name: Optional[str] = None,
             seed: Optional[int] = None) -> Optional[FaultSpec]:
        """The first armed fault of ``kind`` matching this site, claimed.

        Claiming is atomic (marker file with ``O_EXCL``): a returned
        spec has definitively fired here and nowhere else.
        """
        for spec in self.specs:
            if spec.kind != kind or not spec.matches(name, seed):
                continue
            if spec.rate < 1.0 and not self._draw(spec, name, seed):
                continue
            if not self._claim(spec):
                continue
            return spec
        return None

    def pick_corrupt(self, subsystem: str) -> Optional[FaultSpec]:
        """The first armed ``corrupt`` fault targeting ``subsystem``
        that also matches the in-flight job, claimed.

        Unlike :meth:`pick`, the job identity comes from
        :attr:`job_context` (sanitizer check sites are deep inside
        model code and don't know which job is running).
        """
        name, seed = self.job_context
        for spec in self.specs:
            if spec.kind != "corrupt" or spec.sub != subsystem:
                continue
            if not spec.matches(name, seed):
                continue
            if spec.rate < 1.0 and not self._draw(spec, name, seed):
                continue
            if not self._claim(spec):
                continue
            return spec
        return None

    def _draw(self, spec: FaultSpec, name: Optional[str],
              seed: Optional[int]) -> bool:
        """Seeded-deterministic Bernoulli draw for ``rate=`` entries."""
        blob = f"{self.chaos_seed}:{spec.kind}:{spec.index}:{name}:{seed}"
        digest = hashlib.sha256(blob.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") / 2**32 < spec.rate

    def _claim(self, spec: FaultSpec) -> bool:
        marker = f"{spec.kind}.{spec.index}"
        if not spec.once:
            # Repeat-firing entries never contend; the marker only counts.
            self._fire_serial += 1
            self._write_marker(f"{marker}.{os.getpid()}.{self._fire_serial}")
            return True
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            try:
                fd = os.open(str(self.state_dir / marker),
                             os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                return False
            except OSError:
                pass  # unwritable state dir: fall back to the local claim set
            else:
                os.close(fd)
                return True
        if marker in self._local_claims:
            return False
        self._local_claims.add(marker)
        return True

    def _write_marker(self, marker: str) -> None:
        if self.state_dir is None:
            return
        try:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            (self.state_dir / marker).touch()
        except OSError:
            pass

    def note(self, kind: str) -> None:
        """Count one injection (local tally + telemetry counter)."""
        self._local_counts[kind] = self._local_counts.get(kind, 0) + 1
        if telem.metrics_on:
            telem.counter("chaos_faults_injected_total", kind=kind).inc()


# ----------------------------------------------------------------------
# Module-level runtime: the hooks instrumented code calls
# ----------------------------------------------------------------------
_cached_key: Optional[Tuple[str, Optional[str]]] = None
_cached_plan: Optional[ChaosPlan] = None


def current_plan() -> Optional[ChaosPlan]:
    """The active plan for the current ``REPRO_CHAOS`` value, or None.

    Re-parsed whenever the environment changes, so tests and the
    harness can install/remove schedules without process restarts.
    """
    global _cached_key, _cached_plan
    spec = os.environ.get(ENV_CHAOS, "").strip()
    state = os.environ.get(ENV_CHAOS_STATE) or None
    key = (spec, state)
    if key != _cached_key:
        _cached_plan = ChaosPlan.parse(spec, state_dir=state) if spec else None
        _cached_key = key
    return _cached_plan


def enabled() -> bool:
    """Cheap guard: is any chaos schedule configured?"""
    return bool(os.environ.get(ENV_CHAOS, "").strip())


def reset() -> None:
    """Drop the cached plan (and its in-process claims/tallies)."""
    global _cached_key, _cached_plan
    _cached_key = None
    _cached_plan = None


def in_worker() -> bool:
    """True in a multiprocessing child (a pool worker), False in the parent."""
    import multiprocessing

    return multiprocessing.parent_process() is not None


def on_job_start(name: str, seed: Optional[int]) -> None:
    """Job-entry injection point: may SIGKILL, hang, or raise.

    Called by :func:`~repro.experiments.runner.execute_job_safe` before
    the job body.  ``kill`` only ever fires inside a pool worker.
    """
    plan = current_plan()
    if plan is None:
        return
    plan.job_context = (name, seed)
    if in_worker():
        spec = plan.pick("kill", name, seed)
        if spec is not None:
            plan.note("kill")
            os.kill(os.getpid(), signal.SIGKILL)
    spec = plan.pick("hang", name, seed)
    if spec is not None:
        plan.note("hang")
        time.sleep(spec.secs)
    spec = plan.pick("exc", name, seed)
    if spec is not None:
        plan.note("exc")
        raise ChaosTransientError(
            f"injected transient failure ({name}, seed {seed})"
        )


def tear_cache_write(name: str, seed: Optional[int]) -> bool:
    """Should this result-cache write be torn?  (Consumes the fault.)"""
    plan = current_plan()
    if plan is None:
        return False
    spec = plan.pick("torn", name, seed)
    if spec is None:
        return False
    plan.note("torn")
    return True


def tear_journal_append(event: Optional[str] = None) -> bool:
    """Should this service-journal append be torn?  (Consumes the fault.)

    ``event`` is the journal record's event name; a ``torn_journal``
    entry with ``name=done`` tears only the completion record, leaving
    the submission journaled — the restart-replay case the service
    must survive.
    """
    plan = current_plan()
    if plan is None:
        return False
    spec = plan.pick("torn_journal", event, None)
    if spec is None:
        return False
    plan.note("torn_journal")
    return True


def fail_ledger_append(name: Optional[str] = None,
                       seed: Optional[int] = None) -> bool:
    """Should this ledger append fail?  (Consumes the fault.)"""
    plan = current_plan()
    if plan is None:
        return False
    spec = plan.pick("ledger", name, seed)
    if spec is None:
        return False
    plan.note("ledger")
    return True


def injected_counts(state_dir: Optional[Any] = None) -> Dict[str, int]:
    """Faults fired so far, by kind — read from the state directory's
    marker files, which survive even a SIGKILLed injector process.

    Falls back to the current plan's in-process tally when no state
    directory is configured.
    """
    directory = state_dir
    if directory is None:
        directory = os.environ.get(ENV_CHAOS_STATE) or None
    if directory is not None:
        counts: Dict[str, int] = {}
        root = Path(directory)
        if root.is_dir():
            for marker in root.iterdir():
                kind = marker.name.split(".", 1)[0]
                if kind in FAULT_KINDS:
                    counts[kind] = counts.get(kind, 0) + 1
        return counts
    plan = current_plan()
    return dict(plan._local_counts) if plan is not None else {}
