"""Chaos engineering for the experiment execution stack.

Deterministic, replayable fault injection (:mod:`repro.chaos.plan`)
plus the scenario harness that proves the hardened runner recovers
from every fault it claims to (:mod:`repro.chaos.harness`,
``repro chaos`` on the CLI).
"""

from repro.chaos.plan import (
    DEFAULT_HANG_SECS,
    ENV_CHAOS,
    ENV_CHAOS_STATE,
    FAULT_KINDS,
    ChaosPlan,
    ChaosTransientError,
    FaultSpec,
    current_plan,
    enabled,
    fail_ledger_append,
    in_worker,
    injected_counts,
    on_job_start,
    reset,
    tear_cache_write,
    tear_journal_append,
)
from repro.chaos.state import INJECTORS, StateInjector, maybe_corrupt_state

__all__ = [
    "DEFAULT_HANG_SECS",
    "ENV_CHAOS",
    "ENV_CHAOS_STATE",
    "FAULT_KINDS",
    "INJECTORS",
    "ChaosPlan",
    "ChaosTransientError",
    "FaultSpec",
    "StateInjector",
    "current_plan",
    "enabled",
    "fail_ledger_append",
    "in_worker",
    "injected_counts",
    "maybe_corrupt_state",
    "on_job_start",
    "reset",
    "tear_cache_write",
    "tear_journal_append",
]
