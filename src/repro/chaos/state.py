"""Domain-level state-corruption injectors.

Process-level chaos (:mod:`repro.chaos.plan`) proves the *runner*
survives dying workers and torn writes; these injectors prove the
*sanitizer* detects corrupted simulator state.  Each injector is paired
1:1 with a registered invariant class in :mod:`repro.sanitizer.checks`
(the negative-test suite asserts the pairing is complete) and applies
the smallest mutation that breaks that class's invariant:

``dram.bank``
    Flip one stored cell bit directly in the backing array, bypassing
    the modeled write path — exactly the "flip that didn't come from
    the disturbance mechanism" the shadow digests exist to catch.
``dram.refresh``
    Skew the round-robin refresh cursor past the last row, so the
    engine would silently stop refreshing real rows.
``ecc.codec``
    Alias two of a codec's data positions, corrupting every subsequent
    encode — caught by the round-trip spot check.
``flash.ftl``
    Point one logical page's mapping at another's physical page,
    breaking logical→physical bijectivity.
``pcm.startgap``
    Alias two start-gap mapping entries, breaking the permutation.

Injectors fire from :func:`repro.sanitizer.runtime.check` sites via
:func:`maybe_corrupt_state`, driven by ``corrupt:sub=<subsystem>``
entries in ``REPRO_CHAOS`` — declared, once-by-default, and pinnable to
a job with ``name=``/``seed=`` like every other fault kind.  Each
mutation is deterministic given the object's state (always the first
eligible target), so an injected failure replays bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro.chaos.plan import current_plan
from repro.telemetry import runtime as telem

__all__ = ["StateInjector", "INJECTORS", "maybe_corrupt_state"]


@dataclass(frozen=True)
class StateInjector:
    """One paired corruption: applies the minimal state mutation that
    the same-named sanitizer invariant class must detect.

    Attributes:
        subsystem: sanitizer registry key this injector is paired with.
        description: what the corruption models, one line.
        can_apply: ``can_apply(obj)`` — whether the object currently
            has state eligible for this mutation.  Checked *before* the
            fault is claimed, so an armed corruption is never burned on
            an object it cannot corrupt.
        apply: ``apply(obj) -> detail`` — mutate and describe.
    """

    subsystem: str
    description: str
    can_apply: Callable[[Any], bool]
    apply: Callable[[Any], str]


# ----------------------------------------------------------------------
# The paired injectors (keys must mirror repro.sanitizer.checks)
# ----------------------------------------------------------------------
def _bank_can(bank: Any) -> bool:
    return bool(bank._data)


def _bank_apply(bank: Any) -> str:
    row = min(bank._data)
    bank._data[row][0] ^= 1  # raw array poke: no write, no note, no model
    return f"flipped stored bit 0 of bank {bank.index} row {row}"


def _refresh_can(engine: Any) -> bool:
    return True


def _refresh_apply(engine: Any) -> str:
    rows = engine.module.geometry.rows
    engine._cursor = rows + 13
    return f"skewed refresh cursor to {engine._cursor} (rows={rows})"


def _ecc_can(code: Any) -> bool:
    positions = getattr(code, "_data_positions", None)
    return positions is not None and len(positions) >= 2


def _ecc_apply(code: Any) -> str:
    code._data_positions[-1] = code._data_positions[0]
    return (f"aliased data positions of {type(code).__name__}: "
            f"last -> {code._data_positions[0]}")


def _ftl_can(ftl: Any) -> bool:
    mapped = 0
    for location in ftl._map:
        if location is not None:
            mapped += 1
            if mapped >= 2:
                return True
    return False


def _ftl_apply(ftl: Any) -> str:
    victims = []
    for lpn, location in enumerate(ftl._map):
        if location is not None:
            victims.append(lpn)
            if len(victims) == 2:
                break
    first, second = victims
    ftl._map[first] = ftl._map[second]
    return (f"aliased FTL mapping: lpn {first} -> {ftl._map[second]} "
            f"(owned by lpn {second})")


def _startgap_can(sg: Any) -> bool:
    return sg.n_logical >= 2


def _startgap_apply(sg: Any) -> str:
    sg._mapping[1] = sg._mapping[0]
    return (f"aliased start-gap mapping: lines 0 and 1 both -> slot "
            f"{int(sg._mapping[0])}")


INJECTORS: Dict[str, StateInjector] = {
    injector.subsystem: injector
    for injector in (
        StateInjector(
            subsystem="dram.bank",
            description="flip a stored cell bit outside the modeled write path",
            can_apply=_bank_can,
            apply=_bank_apply,
        ),
        StateInjector(
            subsystem="dram.refresh",
            description="skew the refresh cursor past the last physical row",
            can_apply=_refresh_can,
            apply=_refresh_apply,
        ),
        StateInjector(
            subsystem="ecc.codec",
            description="alias two data positions of a codec",
            can_apply=_ecc_can,
            apply=_ecc_apply,
        ),
        StateInjector(
            subsystem="flash.ftl",
            description="alias two logical pages onto one physical page",
            can_apply=_ftl_can,
            apply=_ftl_apply,
        ),
        StateInjector(
            subsystem="pcm.startgap",
            description="alias two start-gap permutation entries",
            can_apply=_startgap_can,
            apply=_startgap_apply,
        ),
    )
}


def maybe_corrupt_state(subsystem: str, obj: Any) -> bool:
    """Apply an armed ``corrupt:sub=subsystem`` fault to ``obj``.

    Returns True when a corruption was injected — the caller
    (:func:`repro.sanitizer.runtime.check`) then forces the full-depth
    check on the same call, so detection is deterministic rather than
    waiting on an amortized scan.
    """
    plan = current_plan()
    if plan is None:
        return False
    injector = INJECTORS.get(subsystem)
    if injector is None or not injector.can_apply(obj):
        return False
    spec = plan.pick_corrupt(subsystem)
    if spec is None:
        return False
    detail = injector.apply(obj)
    plan.note("corrupt")
    if telem.trace_on:
        telem.trace("chaos_corrupt", sub=subsystem, detail=detail)
    return True
