"""Chaos scenarios: prove the hardened runner recovers, on demand.

Each scenario arms a pinned ``REPRO_CHAOS`` schedule (see
:mod:`repro.chaos.plan`), runs a real sweep through a real
:class:`~repro.experiments.runner.ExperimentRunner`, and asserts the
*recovered* end state — all jobs accounted for, structured outcomes
where faults landed, telemetry counters reporting the injected counts
exactly.  Nothing is mocked: the SIGKILL is a SIGKILL, the hang is a
sleep past a real deadline, the torn cache write leaves real truncated
JSON on disk.

The suite is deterministic (faults pin job seeds that are themselves
derived deterministically), so CI replays the exact same failure
schedule every run.  ``repro chaos`` on the CLI runs it end to end.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro import chaos
from repro.experiments import registry
from repro.experiments.checkpoint import SweepCheckpoint, job_key
from repro.experiments.runner import ExperimentRunner, Job, derive_seed
from repro.sanitizer import runtime as sanit
from repro.sanitizer.bundle import ENV_CAPTURE, load_bundle, replay_bundle
from repro.telemetry import RunLedger, job_id_from_key

__all__ = [
    "PROBE_EXPERIMENT",
    "Check",
    "ScenarioOutcome",
    "SCENARIOS",
    "run_scenario",
    "run_suite",
]

#: The experiment every scenario sweeps: fast (~ms), seed-accepting,
#: and numerically deterministic, so the harness measures the *runner*,
#: not the workload.
PROBE_EXPERIMENT = "sidedness_ablation"

#: Injected hangs sleep this long — must exceed :data:`SCENARIO_TIMEOUT_S`
#: by a wide margin so a missed deadline shows up as a stall, not a pass.
HANG_SECS = 20.0

#: The per-job deadline scenarios run with.
SCENARIO_TIMEOUT_S = 2.0


@dataclass
class Check:
    """One asserted property of a scenario's end state."""

    label: str
    ok: bool
    observed: str = ""


@dataclass
class ScenarioOutcome:
    name: str
    checks: List[Check] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.ok for c in self.checks)

    def expect(self, label: str, ok: bool, observed: str = "") -> None:
        self.checks.append(Check(label, bool(ok), observed))

    def expect_eq(self, label: str, got, want) -> None:
        self.checks.append(Check(label, got == want, f"got {got!r}, want {want!r}"))


class _Arena:
    """Per-scenario scratch space + chaos environment management."""

    def __init__(self, root: Path, name: str):
        self.root = root / name
        self.root.mkdir(parents=True, exist_ok=True)
        self.cache_dir = self.root / "cache"
        self.state_dir = self.root / "chaos-state"
        self.checkpoint_path = self.root / "checkpoint.jsonl"
        self.ledger_path = self.root / "ledger.jsonl"
        self._saved: Dict[str, Optional[str]] = {}

    def arm(self, spec: str) -> None:
        """Install a chaos schedule (with this arena's state dir)."""
        for key, value in ((chaos.ENV_CHAOS, spec),
                           (chaos.ENV_CHAOS_STATE, str(self.state_dir))):
            self._saved.setdefault(key, os.environ.get(key))
            os.environ[key] = value
        chaos.reset()

    def set_env(self, key: str, value: str) -> None:
        """Set an extra env knob for this scenario; restored afterwards."""
        self._saved.setdefault(key, os.environ.get(key))
        os.environ[key] = value

    def disarm(self) -> None:
        """Remove the chaos schedule (state dir markers are kept)."""
        for key in (chaos.ENV_CHAOS, chaos.ENV_CHAOS_STATE):
            self._saved.setdefault(key, os.environ.get(key))
            os.environ.pop(key, None)
        chaos.reset()

    def restore(self) -> None:
        for key, value in self._saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        self._saved.clear()
        chaos.reset()
        # A scenario may have run jobs in-process with REPRO_SANITIZE
        # armed; resync so the level matches the restored environment.
        sanit.sync_from_env(default="off")

    def injected(self) -> Dict[str, int]:
        return chaos.injected_counts(self.state_dir)


def _jobs(n: int, base_seed: int = 0) -> List[Job]:
    name = registry.resolve(PROBE_EXPERIMENT)
    return [Job(name, {}, derive_seed(base_seed, i)) for i in range(n)]


def _runner(arena: _Arena, workers: int, **kwargs) -> ExperimentRunner:
    kwargs.setdefault("cache_dir", arena.cache_dir)
    kwargs.setdefault("ledger", False)
    return ExperimentRunner(max_workers=workers, collect_metrics=True, **kwargs)


def _metrics(runner: ExperimentRunner):
    """The runner's metrics registry; harness runners always collect.

    An explicit raise (not ``assert``) so the guard survives ``python -O``.
    """
    if runner.metrics is None:
        raise RuntimeError("harness runner was built without collect_metrics")
    return runner.metrics


def _jobs_metric(runner: ExperimentRunner, **labels) -> float:
    return _metrics(runner).value("runner_jobs_total", **labels)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------

def scenario_kill(arena: _Arena, jobs: int, workers: int) -> ScenarioOutcome:
    """One worker SIGKILLed mid-sweep → pool rebuilt, every job completes."""
    out = ScenarioOutcome("kill")
    victim = derive_seed(0, 1)
    arena.arm(f"kill:seed={victim}")
    runner = _runner(arena, workers, timeout_s=SCENARIO_TIMEOUT_S)
    results = runner.run(_jobs(jobs))
    out.expect_eq("all jobs return results", len(results), jobs)
    out.expect_eq("every job recovered ok",
                  sum(r.ok for r in results), jobs)
    out.expect_eq("exactly one pool rebuild", runner.pool_rebuilds, 1)
    out.expect_eq("runner_pool_rebuilds_total",
                  _jobs_metric_total(runner, "runner_pool_rebuilds_total"), 1)
    out.expect_eq("one kill injected", arena.injected().get("kill", 0), 1)
    return out


def scenario_hang(arena: _Arena, jobs: int, workers: int) -> ScenarioOutcome:
    """One hung job → stale-heartbeat warning, *then* a structured
    timeout outcome; worker reclaimed."""
    out = ScenarioOutcome("hang")
    victim = derive_seed(0, 2)
    arena.arm(f"hang:seed={victim}:secs={HANG_SECS:g}")
    # Streaming with a tight heartbeat: the hung job must be flagged
    # stale well inside the 2 s deadline, not discovered by it.
    runner = _runner(arena, workers, timeout_s=SCENARIO_TIMEOUT_S,
                     stream=True, heartbeat_s=0.1, stale_after_s=0.5)
    results = runner.run(_jobs(jobs))
    timeouts = [r for r in results if r.outcome == "timeout"]
    out.expect_eq("all jobs return results", len(results), jobs)
    out.expect_eq("exactly one timeout outcome", len(timeouts), 1)
    out.expect("timeout hit the hung job",
               bool(timeouts) and timeouts[0].seed == victim,
               f"timed-out seed {timeouts[0].seed if timeouts else None}")
    out.expect("timeout error is structured",
               bool(timeouts) and str(timeouts[0].error).startswith("JobTimeout:"),
               str(timeouts[0].error) if timeouts else "")
    out.expect_eq("runner_jobs_total{outcome=timeout}",
                  _jobs_metric(runner, cache_hit="false", outcome="timeout"), 1)
    out.expect_eq("hung worker reclaimed (one rebuild)", runner.pool_rebuilds, 1)
    out.expect_eq("everything else ok",
                  sum(r.ok for r in results), jobs - 1)

    hung_id = job_id_from_key(
        job_key(registry.resolve(PROBE_EXPERIMENT), {}, victim))
    progress = runner.progress
    stale = [e for e in (progress.stale_events if progress else [])
             if e["job_id"] == hung_id]
    out.expect("stale heartbeat flagged for the hung job", bool(stale),
               f"stale job_ids {[e['job_id'] for e in progress.stale_events]}"
               if progress else "runner kept no progress")
    hung_job = progress.jobs.get(hung_id) if progress else None
    finished = hung_job.get("finished_mono") if hung_job else None
    out.expect("stale warning strictly precedes the timeout outcome",
               bool(stale) and finished is not None
               and stale[0]["at_mono"] < finished,
               f"stale at {stale[0]['at_mono'] if stale else None}, "
               f"job finished at {finished}")
    out.expect("runner_stale_heartbeats_total incremented",
               _jobs_metric_total(runner, "runner_stale_heartbeats_total") >= 1,
               f"got {_jobs_metric_total(runner, 'runner_stale_heartbeats_total')}")
    return out


def scenario_exc(arena: _Arena, jobs: int, workers: int) -> ScenarioOutcome:
    """One injected transient failure → retried with backoff, sweep clean."""
    out = ScenarioOutcome("exc")
    victim = derive_seed(0, 0)
    arena.arm(f"exc:seed={victim}")
    runner = _runner(arena, workers, retries=2, backoff_s=0.01)
    results = runner.run(_jobs(jobs))
    out.expect_eq("all jobs return results", len(results), jobs)
    out.expect_eq("transient failure retried to success",
                  sum(r.ok for r in results), jobs)
    out.expect_eq("exactly one retry", runner.retries_total, 1)
    out.expect_eq("runner_retries_total{error=ChaosTransientError}",
                  _metrics(runner).value("runner_retries_total",
                                         error="ChaosTransientError"), 1)
    out.expect_eq("one exc injected", arena.injected().get("exc", 0), 1)
    return out


def scenario_torn(arena: _Arena, jobs: int, workers: int) -> ScenarioOutcome:
    """One torn cache write → quarantined on re-read, job re-runs clean."""
    out = ScenarioOutcome("torn")
    victim = derive_seed(0, 1)
    arena.arm(f"torn:seed={victim}")
    first = _runner(arena, workers)
    results = first.run(_jobs(jobs))
    out.expect_eq("first sweep completes", sum(r.ok for r in results), jobs)
    out.expect_eq("one torn write injected", arena.injected().get("torn", 0), 1)
    arena.disarm()
    # Second run, cold process state, warm cache: the torn entry must
    # read as a miss (and be quarantined), never crash the run.
    second = _runner(arena, workers)
    results2 = second.run(_jobs(jobs))
    out.expect_eq("second sweep completes", sum(r.ok for r in results2), jobs)
    out.expect_eq("torn entry missed, everything else hit",
                  sum(r.cache_hit for r in results2), jobs - 1)
    corrupt = list(arena.cache_dir.glob("*/*.corrupt"))
    out.expect_eq("torn entry quarantined as .corrupt", len(corrupt), 1)
    return out


def scenario_ledger(arena: _Arena, jobs: int, workers: int) -> ScenarioOutcome:
    """One injected ledger I/O error → run unaffected, ledger short one line."""
    out = ScenarioOutcome("ledger")
    arena.arm("ledger")
    runner = _runner(arena, 1, ledger=RunLedger(arena.ledger_path))
    results = runner.run(_jobs(jobs))
    out.expect_eq("all jobs ok despite ledger fault",
                  sum(r.ok for r in results), jobs)
    ledger = RunLedger(arena.ledger_path)
    records = ledger.scan()
    out.expect_eq("exactly one append dropped", len(records), jobs - 1)
    out.expect_eq("no corrupt ledger lines", ledger.corrupt_lines, 0)
    out.expect_eq("one ledger fault injected", arena.injected().get("ledger", 0), 1)
    return out


def scenario_combined(arena: _Arena, jobs: int, workers: int) -> ScenarioOutcome:
    """The acceptance scenario: SIGKILL + hang + torn write in one
    16-job sweep; then a clean ``--resume`` that re-runs only the job
    that never finished."""
    out = ScenarioOutcome("combined")
    jobs = max(jobs, 16)
    kill_seed = derive_seed(0, 1)
    hang_seed = derive_seed(0, 6)
    torn_seed = derive_seed(0, 11)
    arena.arm(
        f"kill:seed={kill_seed},"
        f"hang:seed={hang_seed}:secs={HANG_SECS:g},"
        f"torn:seed={torn_seed}"
    )
    runner = _runner(arena, workers, timeout_s=SCENARIO_TIMEOUT_S,
                     checkpoint=arena.checkpoint_path)
    results = runner.run(_jobs(jobs))
    timeouts = [r for r in results if r.outcome == "timeout"]
    out.expect_eq("all 16 jobs return results", len(results), jobs)
    out.expect_eq("one structured timeout", len(timeouts), 1)
    out.expect("timeout hit the hung job",
               bool(timeouts) and timeouts[0].seed == hang_seed,
               f"timed-out seed {timeouts[0].seed if timeouts else None}")
    out.expect_eq("everything else recovered ok",
                  sum(r.ok for r in results), jobs - 1)
    out.expect_eq("two pool rebuilds (kill + hung-worker reclaim)",
                  runner.pool_rebuilds, 2)
    out.expect_eq("runner_pool_rebuilds_total",
                  _jobs_metric_total(runner, "runner_pool_rebuilds_total"), 2)
    out.expect_eq("runner_jobs_total{outcome=timeout}",
                  _jobs_metric(runner, cache_hit="false", outcome="timeout"), 1)
    injected = arena.injected()
    out.expect_eq("injected counts exact",
                  (injected.get("kill", 0), injected.get("hang", 0),
                   injected.get("torn", 0)),
                  (1, 1, 1))

    # Resume with chaos disarmed: the checkpoint restores the 15
    # completed jobs; only the timed-out one re-executes.
    arena.disarm()
    resumed = ExperimentRunner(cache_dir=None, max_workers=workers,
                               collect_metrics=True, ledger=False,
                               checkpoint=arena.checkpoint_path)
    results2 = resumed.run(_jobs(jobs))
    out.expect_eq("resume returns all 16", len(results2), jobs)
    out.expect_eq("resume finishes clean", sum(r.ok for r in results2), jobs)
    out.expect_eq("resume restored 15 from checkpoint",
                  _jobs_metric(resumed, cache_hit="true", outcome="ok"), jobs - 1)
    out.expect_eq("resume re-executed exactly 1",
                  _jobs_metric(resumed, cache_hit="false", outcome="ok"), 1)
    return out


def scenario_sanitizer(arena: _Arena, jobs: int, workers: int) -> ScenarioOutcome:
    """One injected stored-bit corruption → the sanitizer trips, the job
    becomes a non-retried ``invariant`` outcome attributed to the right
    subsystem, a failure bundle lands on disk, and replaying that bundle
    reproduces the identical failure digest."""
    out = ScenarioOutcome("sanitizer")
    victim = derive_seed(0, 1)
    bundles = arena.root / "bundles"
    arena.set_env(sanit.ENV_SANITIZE, "full")
    arena.set_env(ENV_CAPTURE, str(bundles))
    arena.arm(f"corrupt:sub=dram.bank:seed={victim}")
    runner = _runner(arena, workers, retries=2, backoff_s=0.01)
    results = runner.run(_jobs(jobs))
    invariants = [r for r in results if r.outcome == "invariant"]
    out.expect_eq("all jobs return results", len(results), jobs)
    out.expect_eq("exactly one invariant outcome", len(invariants), 1)
    out.expect("violation hit the corrupted job",
               bool(invariants) and invariants[0].seed == victim,
               f"invariant seed {invariants[0].seed if invariants else None}")
    out.expect("violation attributed to dram.bank",
               bool(invariants) and str(invariants[0].error).startswith(
                   "InvariantViolation: [dram.bank]"),
               str(invariants[0].error) if invariants else "")
    out.expect_eq("violation never retried", runner.retries_total, 0)
    out.expect_eq("sanitizer_violations_total{subsystem=dram.bank}",
                  _metrics(runner).value("sanitizer_violations_total",
                                         subsystem="dram.bank"), 1)
    out.expect_eq("everything else ok", sum(r.ok for r in results), jobs - 1)
    out.expect_eq("one corruption injected",
                  arena.injected().get("corrupt", 0), 1)

    paths = sorted(bundles.glob("*.json")) if bundles.is_dir() else []
    out.expect_eq("one failure bundle written", len(paths), 1)
    if paths:
        record = load_bundle(paths[0])
        out.expect_eq("bundle outcome is invariant",
                      record.get("outcome"), "invariant")
        out.expect("bundle carries the sanitizer verdict",
                   isinstance(record.get("violation"), dict)
                   and record["violation"].get("subsystem") == "dram.bank",
                   repr(record.get("violation")))
        # Replay arms its own chaos/sanitizer state from the bundle.
        arena.disarm()
        report = replay_bundle(record)
        out.expect("replay reproduces the failure digest",
                   report.reproduced,
                   f"expected {report.expected_digest}, got {report.digest}")
    return out


def _jobs_metric_total(runner: ExperimentRunner, name: str) -> float:
    return _metrics(runner).value(name)


# ----------------------------------------------------------------------
# Service-layer scenarios (the ``repro serve`` daemon)
# ----------------------------------------------------------------------

#: How long the harness waits for a spawned daemon to publish its
#: endpoint and answer ``/healthz``.
SERVICE_READY_S = 30.0


def _daemon_env(arena: _Arena, chaos_spec: Optional[str] = None) -> Dict[str, str]:
    """A clean environment for a spawned daemon: this package importable,
    the arena's chaos schedule (and only it) armed."""
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    prior = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + prior if prior else "")
    env.pop(chaos.ENV_CHAOS, None)
    env.pop(chaos.ENV_CHAOS_STATE, None)
    if chaos_spec is not None:
        env[chaos.ENV_CHAOS] = chaos_spec
        env[chaos.ENV_CHAOS_STATE] = str(arena.state_dir)
    return env


def _spawn_daemon(arena: _Arena, workers: int,
                  chaos_spec: Optional[str] = None,
                  extra: Optional[List[str]] = None) -> subprocess.Popen:
    """Start ``repro serve`` on the arena's service state dir.

    ``start_new_session`` puts the daemon and its pool workers in their
    own process group, so a scenario's SIGKILL takes down the whole
    tree — exactly what an OOM-kill or node loss does in production.
    ``extra`` appends further ``repro serve`` flags (lock/rescan bounds
    for the multi-daemon scenarios).
    """
    log = open(arena.root / "serve.log", "ab")
    try:
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--state-dir", str(arena.root / "svc"),
             "--workers", str(workers)] + list(extra or ()),
            stdout=log, stderr=log, env=_daemon_env(arena, chaos_spec),
            start_new_session=True)
    finally:
        log.close()


def _await_client(arena: _Arena, proc: subprocess.Popen,
                  timeout_s: float = SERVICE_READY_S):
    """A client for the spawned daemon, once it answers ``/healthz``."""
    from repro.service import ServiceClient
    from repro.service.daemon import read_endpoint

    deadline = time.monotonic() + timeout_s
    state_dir = arena.root / "svc"
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited before becoming ready (rc {proc.returncode}; "
                f"see {arena.root / 'serve.log'})")
        record = read_endpoint(state_dir)
        if record is not None and record.get("pid") == proc.pid:
            client = ServiceClient(
                f"http://{record.get('host', '127.0.0.1')}:{record['port']}",
                retries=2, backoff_s=0.1)
            try:
                client.health()
                return client
            except Exception:
                pass
        time.sleep(0.05)
    raise RuntimeError(f"daemon never became ready within {timeout_s:g}s")


def _poll(predicate: Callable[[], bool], timeout_s: float,
          interval_s: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


def _raw_post(base_url: str, payload: dict, timeout_s: float = 5.0):
    """One un-retried POST /jobs: ``(status, retry_after, body)`` —
    scenarios asserting shed responses must see the raw status, not a
    client that retried past it."""
    request = urllib.request.Request(
        f"{base_url}/jobs", data=json.dumps(payload).encode("utf-8"),
        method="POST", headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as response:
            return (response.status, response.headers.get("Retry-After"),
                    json.loads(response.read() or b"{}"))
    except urllib.error.HTTPError as exc:
        blob = exc.read()
        try:
            body = json.loads(blob)
        except ValueError:
            body = {}
        return exc.code, exc.headers.get("Retry-After"), body


def _fresh_ledger_counts(path: Path) -> Dict[str, int]:
    """Fresh (non-cache-hit) successful executions per job_id — the
    exactly-once evidence."""
    counts: Dict[str, int] = {}
    for record in RunLedger(path).scan():
        if record.get("ok") and not record.get("cache_hit") \
                and record.get("job_id"):
            jid = record["job_id"]
            counts[jid] = counts.get(jid, 0) + 1
    return counts


def _kill_group(proc: subprocess.Popen) -> None:
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass


def scenario_service_kill(arena: _Arena, jobs: int, workers: int) -> ScenarioOutcome:
    """The acceptance scenario: a 16-job sweep submitted to the daemon,
    the daemon SIGKILLed mid-flight, restarted on the same state dir →
    the sweep completes with every job accounted for exactly once
    (journal, ledger, and checkpoint agree; no completed job re-runs)."""
    out = ScenarioOutcome("service_kill")
    jobs = max(jobs, 16)
    # Daemon workers=2 → chunks of 4; the hang pins job index 8, so
    # chunks 1–2 complete and the kill lands mid-chunk-3, always.
    victim = derive_seed(0, 8)
    svc_dir = arena.root / "svc"
    sid = None
    proc = _spawn_daemon(arena, workers=2,
                         chaos_spec=f"hang:seed={victim}:secs=60")
    try:
        client = _await_client(arena, proc)
        response = client.submit({"name": PROBE_EXPERIMENT, "seeds": jobs})
        sid = response["sid"]
        ckpt = SweepCheckpoint(svc_dir / "checkpoints" / f"{sid}.jsonl")
        # Two chunks checkpointed AND the chunk-3 victim already inside
        # its injected hang (the marker file is claimed before the
        # sleep) — the kill must land on a daemon with work in flight.
        reached = _poll(lambda: (len(ckpt.keys()) >= 8
                                 and arena.injected().get("hang", 0) >= 1),
                        30.0)
        out.expect("daemon checkpointed two chunks before the kill",
                   reached, f"checkpoint holds {len(ckpt.keys())} of {jobs}, "
                            f"injected {arena.injected()}")
        _kill_group(proc)
        rc = proc.wait(timeout=10)
        out.expect_eq("daemon died by SIGKILL", rc, -signal.SIGKILL)
    finally:
        _kill_group(proc)
        proc.wait(timeout=10)
    out.expect_eq("one hang injected before the kill",
                  arena.injected().get("hang", 0), 1)

    # Restart on the same state dir, chaos disarmed: the journal replays
    # the pending submission; the checkpoint restores completed jobs.
    proc2 = _spawn_daemon(arena, workers=2)
    try:
        client2 = _await_client(arena, proc2)
        record = client2.wait(sid, timeout_s=90.0)
        out.expect_eq("sweep completes after restart",
                      record.get("state"), "done")
        summary = record.get("summary") or {}
        out.expect_eq("all jobs in the final summary",
                      summary.get("jobs"), jobs)
        out.expect_eq("no errors after recovery", summary.get("errors"), 0)
        proc2.send_signal(signal.SIGTERM)
        rc2 = proc2.wait(timeout=30)
        out.expect_eq("restarted daemon drains to exit 0", rc2, 0)
    finally:
        _kill_group(proc2)
        proc2.wait(timeout=10)

    # Exactly-once accounting: checkpoint, ledger, and journal agree.
    from repro.service import JobJournal

    keys = SweepCheckpoint(svc_dir / "checkpoints" / f"{sid}.jsonl").keys()
    out.expect_eq("checkpoint holds every job exactly once",
                  len(keys), jobs)
    ckpt_ids = {job_id_from_key(k) for k in keys}
    fresh = _fresh_ledger_counts(svc_dir / "ledger.jsonl")
    out.expect("no job fresh-executed more than once",
               all(count == 1 for count in fresh.values()),
               f"duplicated: {[j for j, c in fresh.items() if c > 1]}")
    out.expect("every fresh execution is checkpointed",
               set(fresh).issubset(ckpt_ids),
               f"unaccounted: {sorted(set(fresh) - ckpt_ids)}")
    ledger_ids = {r["job_id"] for r in RunLedger(svc_dir / "ledger.jsonl").scan()
                  if r.get("job_id")}
    out.expect_eq("ledger covers every checkpointed job",
                  ledger_ids, ckpt_ids)
    replayed = JobJournal(svc_dir / "jobs.jsonl").replay()
    out.expect_eq("journal holds exactly one submission",
                  len(replayed.submits), 1)
    done = replayed.done.get(sid) or {}
    out.expect_eq("journal done record agrees on the job set",
                  set(done.get("job_ids") or []), ckpt_ids)
    return out


def scenario_service_drain(arena: _Arena, jobs: int, workers: int) -> ScenarioOutcome:
    """SIGTERM under load → admission stops (503 + Retry-After), the
    in-flight chunk checkpoints, the daemon exits 0, and a restart
    finishes the remaining work without re-running the drained chunk."""
    out = ScenarioOutcome("service_drain")
    jobs = max(jobs, 16)
    # The hang pins a job in the *first* chunk and is finite (3 s): the
    # drain window is the remainder of that chunk.
    victim = derive_seed(0, 2)
    svc_dir = arena.root / "svc"
    sid = None
    proc = _spawn_daemon(arena, workers=2,
                         chaos_spec=f"hang:seed={victim}:secs=3")
    try:
        client = _await_client(arena, proc)
        response = client.submit({"name": PROBE_EXPERIMENT, "seeds": jobs})
        sid = response["sid"]
        ckpt = SweepCheckpoint(svc_dir / "checkpoints" / f"{sid}.jsonl")
        in_flight = _poll(lambda: len(ckpt.keys()) >= 1, 20.0)
        out.expect("first chunk in flight before SIGTERM", in_flight,
                   f"checkpoint holds {len(ckpt.keys())}")
        proc.send_signal(signal.SIGTERM)
        # Signal delivery is asynchronous: wait for the daemon to flip
        # to draining before probing admission (the 3 s hang holds the
        # drain window open far longer than delivery takes).
        _poll(lambda: client.health().get("status") == "draining", 10.0)
        health = client.health()
        out.expect_eq("health reports draining during drain",
                      health.get("status"), "draining")
        status, retry_after, _body = _raw_post(
            client.base_url, {"name": PROBE_EXPERIMENT, "seeds": 2,
                              "base_seed": 9999})
        out.expect_eq("submission during drain shed with 503", status, 503)
        out.expect("drain rejection carries Retry-After",
                   retry_after is not None and float(retry_after) >= 1,
                   f"Retry-After {retry_after!r}")
        rc = proc.wait(timeout=30)
        out.expect_eq("daemon drains to exit 0 under load", rc, 0)
    finally:
        _kill_group(proc)
        proc.wait(timeout=10)
    keys_after_drain = SweepCheckpoint(
        svc_dir / "checkpoints" / f"{sid}.jsonl").keys()
    out.expect_eq("exactly the in-flight chunk was checkpointed",
                  len(keys_after_drain), 4)
    from repro.service import JobJournal

    out.expect_eq("journal keeps the drained job pending",
                  JobJournal(svc_dir / "jobs.jsonl").replay().pending(),
                  [sid])

    proc2 = _spawn_daemon(arena, workers=2)
    try:
        client2 = _await_client(arena, proc2)
        record = client2.wait(sid, timeout_s=90.0)
        out.expect_eq("drained sweep completes after restart",
                      record.get("state"), "done")
        out.expect_eq("no errors after resume",
                      (record.get("summary") or {}).get("errors"), 0)
        proc2.send_signal(signal.SIGTERM)
        rc2 = proc2.wait(timeout=30)
        out.expect_eq("idle daemon drains to exit 0", rc2, 0)
    finally:
        _kill_group(proc2)
        proc2.wait(timeout=10)
    fresh = _fresh_ledger_counts(svc_dir / "ledger.jsonl")
    out.expect_eq("every job fresh-executed exactly once",
                  sorted(fresh.values()), [1] * jobs)
    out.expect_eq("checkpoint holds every job",
                  len(SweepCheckpoint(
                      svc_dir / "checkpoints" / f"{sid}.jsonl").keys()), jobs)
    return out


def scenario_service_torn(arena: _Arena, jobs: int, workers: int) -> ScenarioOutcome:
    """A torn journal append on the completion record → restart replay
    skips the torn tail, re-enqueues the job, and completes it from the
    cache instead of re-executing."""
    from repro.service import ExperimentService, JobJournal, ServiceClient

    out = ScenarioOutcome("service_torn")
    jobs = max(jobs, 2)
    svc_dir = arena.root / "svc"
    arena.arm("torn_journal:name=done")
    service = ExperimentService(svc_dir, port=0, workers=1).start()
    try:
        client = ServiceClient(service.url, retries=2, backoff_s=0.1)
        sid = client.submit({"name": PROBE_EXPERIMENT, "seeds": jobs})["sid"]
        record = client.wait(sid, timeout_s=60.0)
        out.expect_eq("job completes in the first incarnation",
                      record.get("state"), "done")
    finally:
        service.stop()
    out.expect_eq("one torn journal append injected",
                  arena.injected().get("torn_journal", 0), 1)
    raw = (svc_dir / "jobs.jsonl").read_bytes()
    out.expect("journal tail is torn (no trailing newline)",
               bool(raw) and not raw.endswith(b"\n"),
               f"last byte {raw[-1:]!r}")
    arena.disarm()

    service2 = ExperimentService(svc_dir, port=0, workers=1).start()
    try:
        out.expect_eq("replay counted the torn line",
                      service2.metrics.value("service_journal_corrupt_lines"), 1)
        out.expect_eq("replay re-enqueued the unfinished job",
                      service2.metrics.value("service_jobs_recovered_total"), 1)
        client2 = ServiceClient(service2.url, retries=2, backoff_s=0.1)
        record2 = client2.wait(sid, timeout_s=60.0)
        out.expect_eq("job completes after torn-tail replay",
                      record2.get("state"), "done")
        out.expect_eq("completed from cache, not re-executed",
                      (record2.get("summary") or {}).get("cache_hits"), jobs)
    finally:
        service2.stop()
    replayed = JobJournal(svc_dir / "jobs.jsonl").replay()
    out.expect_eq("second incarnation journaled the completion",
                  (replayed.done.get(sid) or {}).get("outcome"), "ok")
    out.expect_eq("post-torn appends parse (one corrupt line only)",
                  replayed.corrupt_lines, 1)
    return out


def scenario_service_shed(arena: _Arena, jobs: int, workers: int) -> ScenarioOutcome:
    """Queue overflow sheds with 429 + Retry-After; duplicates map onto
    the existing job; a retrying client eventually lands the shed
    submission; nothing runs twice."""
    from repro.service import ExperimentService, ServiceClient

    out = ScenarioOutcome("service_shed")
    svc_dir = arena.root / "svc"
    # The first job hangs 3 s in the (single) worker, pinning the queue
    # at its bound while the shed/duplicate probes run.
    arena.arm("hang:seed=11:secs=3")
    service = ExperimentService(svc_dir, port=0, workers=1,
                                max_queue=1).start()
    try:
        client = ServiceClient(service.url, retries=0)
        first = client.submit({"name": PROBE_EXPERIMENT, "seed": 11})
        running = _poll(
            lambda: client.job(first["sid"]).get("state") == "running", 10.0)
        out.expect("first job running (hung in the worker)", running)
        second = client.submit({"name": PROBE_EXPERIMENT, "seed": 22})
        out.expect_eq("second submission queued", second.get("state"),
                      "queued")
        status, retry_after, body = _raw_post(
            service.url, {"name": PROBE_EXPERIMENT, "seed": 33})
        out.expect_eq("overflow shed with 429", status, 429)
        out.expect("shed response carries Retry-After >= 1s",
                   retry_after is not None and float(retry_after) >= 1,
                   f"Retry-After {retry_after!r}")
        out.expect("shed body names the bound",
                   body.get("error") == "queue full", repr(body))
        duplicate = client.submit({"name": PROBE_EXPERIMENT, "seed": 22})
        out.expect("duplicate submission flagged, not re-queued",
                   duplicate.get("duplicate") is True
                   and duplicate.get("sid") == second.get("sid"),
                   repr(duplicate))
        patient = ServiceClient(service.url, retries=8, backoff_s=0.25)
        third = patient.submit({"name": PROBE_EXPERIMENT, "seed": 33})
        out.expect("shed submission admitted once the queue drains",
                   third.get("state") in ("queued", "running", "done"),
                   repr(third.get("state")))
        for sid in (first["sid"], second["sid"], third["sid"]):
            record = patient.wait(sid, timeout_s=60.0)
            out.expect_eq(f"job {sid} completes", record.get("state"), "done")
        out.expect("overflow rejections counted",
                   service.metrics.value("service_rejections_total",
                                         reason="overflow") >= 1)
        out.expect_eq("duplicate counted",
                      service.metrics.value("service_duplicates_total"), 1)
    finally:
        service.stop()
    fresh = _fresh_ledger_counts(svc_dir / "ledger.jsonl")
    out.expect_eq("each job fresh-executed exactly once",
                  sorted(fresh.values()), [1, 1, 1])
    return out


def scenario_service_lock_takeover(arena: _Arena, jobs: int,
                                   workers: int) -> ScenarioOutcome:
    """Two daemons share one state dir; the one holding a submission's
    lock is SIGKILLed mid-sweep.  The survivor discovers the submission
    via journal rescan, takes over the stale lock within the configured
    bound, and finishes every job exactly once (checkpoint + cache make
    the handover resume, not re-run)."""
    out = ScenarioOutcome("service_lock_takeover")
    jobs = max(jobs, 16)
    # Fast bounds so the takeover happens in scenario time: locks go
    # stale after 2 s without a heartbeat; rescan every 250 ms.
    bounds = ["--lock-stale", "2", "--rescan", "0.25"]
    # Daemon workers=2 → chunks of 4; the hang pins job index 8, so the
    # kill always lands on a lock holder with two chunks checkpointed.
    victim = derive_seed(0, 8)
    svc_dir = arena.root / "svc"
    proc_a = _spawn_daemon(arena, workers=2,
                           chaos_spec=f"hang:seed={victim}:secs=60",
                           extra=bounds)
    proc_b = None
    sid = None
    try:
        client_a = _await_client(arena, proc_a)
        response = client_a.submit({"name": PROBE_EXPERIMENT, "seeds": jobs})
        sid = response["sid"]
        ckpt = SweepCheckpoint(svc_dir / "checkpoints" / f"{sid}.jsonl")
        reached = _poll(lambda: (len(ckpt.keys()) >= 8
                                 and arena.injected().get("hang", 0) >= 1),
                        30.0)
        out.expect("holder checkpointed two chunks before the kill",
                   reached, f"checkpoint holds {len(ckpt.keys())} of {jobs}, "
                            f"injected {arena.injected()}")

        # The survivor joins the same state dir while the holder is
        # alive: its startup replay re-enqueues the pending submission,
        # but the holder's heartbeating lock keeps it parked.
        proc_b = _spawn_daemon(arena, workers=2, extra=bounds)
        client_b = _await_client(arena, proc_b)
        health_b = client_b.health()
        out.expect_eq("survivor sees the fresh lock and stays parked",
                      health_b.get("locks", {}).get("takeovers"), 0)

        _kill_group(proc_a)
        rc = proc_a.wait(timeout=10)
        out.expect_eq("holder died by SIGKILL", rc, -signal.SIGKILL)
        killed_at = time.monotonic()

        took_over = _poll(
            lambda: (client_b.health().get("locks", {})
                     .get("takeovers", 0) >= 1), 20.0)
        takeover_s = time.monotonic() - killed_at
        out.expect("survivor takes over the stale lock", took_over,
                   f"locks after {takeover_s:.1f}s: "
                   f"{client_b.health().get('locks')}")
        # Bound: stale(2 s) + blocked-retry(0.5 s) + scheduler slack.
        out.expect("takeover lands within the configured bound",
                   took_over and takeover_s < 10.0, f"{takeover_s:.1f}s")

        record = client_b.wait(sid, timeout_s=90.0)
        out.expect_eq("sweep completes on the survivor",
                      record.get("state"), "done")
        summary = record.get("summary") or {}
        out.expect_eq("all jobs in the final summary",
                      summary.get("jobs"), jobs)
        out.expect_eq("no errors after the handover",
                      summary.get("errors"), 0)
        metrics_text = client_b.metrics_text()
        out.expect("takeover counted in survivor metrics",
                   "service_lock_takeovers_total 1" in metrics_text,
                   [l for l in metrics_text.splitlines() if "takeover" in l])
        proc_b.send_signal(signal.SIGTERM)
        rc_b = proc_b.wait(timeout=30)
        out.expect_eq("survivor drains to exit 0", rc_b, 0)
    finally:
        _kill_group(proc_a)
        proc_a.wait(timeout=10)
        if proc_b is not None:
            _kill_group(proc_b)
            proc_b.wait(timeout=10)

    # Exactly-once accounting across the handover.
    from repro.service import JobJournal

    keys = SweepCheckpoint(svc_dir / "checkpoints" / f"{sid}.jsonl").keys()
    out.expect_eq("checkpoint holds every job exactly once",
                  len(keys), jobs)
    fresh = _fresh_ledger_counts(svc_dir / "ledger.jsonl")
    out.expect("no job fresh-executed more than once",
               all(count == 1 for count in fresh.values()),
               f"duplicated: {[j for j, c in fresh.items() if c > 1]}")
    ledger = RunLedger(svc_dir / "ledger.jsonl")
    ledger.scan()
    out.expect_eq("no torn ledger records across the handover",
                  ledger.corrupt_lines, 0)
    replayed = JobJournal(svc_dir / "jobs.jsonl").replay()
    out.expect_eq("no torn journal records across the handover",
                  replayed.corrupt_lines, 0)
    done = replayed.done.get(sid) or {}
    out.expect_eq("journal done record agrees on the job set",
                  set(done.get("job_ids") or []),
                  {job_id_from_key(k) for k in keys})
    return out


def scenario_service_poisoned(arena: _Arena, jobs: int,
                              workers: int) -> ScenarioOutcome:
    """A poisoned submission (timeout-exhausted job) co-scheduled with a
    healthy one: the poison fails *its* fault domain to a structured
    ``failed`` state without delaying or damaging the healthy
    submission, and a restart replays ``failed`` instead of re-running
    the poison."""
    from repro.service import ExperimentService, JobJournal, ServiceClient

    out = ScenarioOutcome("service_poisoned")
    svc_dir = arena.root / "svc"
    # The poisoned sweep's second job hangs past the 2 s per-job
    # deadline → a structured timeout outcome poisons its fault domain.
    victim = derive_seed(0, 1)
    arena.arm(f"hang:seed={victim}:secs=8")
    service = ExperimentService(svc_dir, port=0, workers=2,
                                max_concurrent=2, timeout_s=2.0).start()
    poisoned_sid = healthy_sid = None
    try:
        client = ServiceClient(service.url, retries=2, backoff_s=0.1)
        poisoned_sid = client.submit(
            {"name": PROBE_EXPERIMENT, "seeds": 6})["sid"]
        healthy_sid = client.submit(
            {"name": PROBE_EXPERIMENT, "seeds": 8, "base_seed": 777})["sid"]
        healthy = client.wait(healthy_sid, timeout_s=60.0)
        out.expect_eq("healthy submission completes",
                      healthy.get("state"), "done")
        out.expect_eq("healthy submission ran every job",
                      (healthy.get("summary") or {}).get("jobs"), 8)
        poisoned = client.wait(poisoned_sid, timeout_s=60.0)
        out.expect_eq("poisoned submission fails structurally",
                      poisoned.get("state"), "failed")
        out.expect("failure names the poison",
                   "timeout" in (poisoned.get("error") or ""),
                   repr(poisoned.get("error")))
        out.expect("poison stopped the fault domain early",
                   (poisoned.get("completed") or 0) < 6,
                   f"completed {poisoned.get('completed')}")
        # Co-scheduling proof: the healthy submission started while the
        # poisoned one (submitted first) was still in flight — a
        # serialized daemon would have parked it until the poison
        # settled.
        out.expect("healthy ran concurrently with the poison",
                   (healthy.get("started_ts") or 0)
                   < (poisoned.get("finished_ts") or 0),
                   f"healthy started {healthy.get('started_ts')}, "
                   f"poison finished {poisoned.get('finished_ts')}")
        out.expect_eq("failed outcome counted",
                      service.metrics.value("service_jobs_total",
                                            outcome="failed"), 1)
    finally:
        service.stop()
    arena.disarm()

    replayed = JobJournal(svc_dir / "jobs.jsonl").replay()
    out.expect_eq("journal records the failed outcome",
                  (replayed.done.get(poisoned_sid) or {}).get("outcome"),
                  "failed")
    out.expect_eq("nothing stays pending", replayed.pending(), [])

    service2 = ExperimentService(svc_dir, port=0, workers=2,
                                 max_concurrent=2).start()
    try:
        rec = service2.jobs.get(poisoned_sid)
        out.expect_eq("restart replays failed, not re-enqueued",
                      rec.state if rec is not None else None, "failed")
    finally:
        service2.stop()
    return out


def scenario_service_journal_race(arena: _Arena, jobs: int,
                                  workers: int) -> ScenarioOutcome:
    """Two daemons race one journal/ledger/cache: disjoint sweeps
    submitted to each complete, every record in the shared files stays
    whole (no torn or interleaved lines), each daemon discovers the
    other's submission via rescan, and no job fresh-executes twice."""
    from repro.service import ExperimentService, JobJournal, ServiceClient

    out = ScenarioOutcome("service_journal_race")
    svc_dir = arena.root / "svc"
    s1 = ExperimentService(svc_dir, port=0, workers=2, rescan_s=0.2,
                           lock_stale_s=5.0).start()
    s2 = ExperimentService(svc_dir, port=0, workers=2, rescan_s=0.2,
                           lock_stale_s=5.0).start()
    try:
        c1 = ServiceClient(s1.url, retries=2, backoff_s=0.1)
        c2 = ServiceClient(s2.url, retries=2, backoff_s=0.1)
        sid1 = c1.submit({"name": PROBE_EXPERIMENT, "seeds": 6,
                          "base_seed": 100})["sid"]
        sid2 = c2.submit({"name": PROBE_EXPERIMENT, "seeds": 6,
                          "base_seed": 200})["sid"]
        rec1 = c1.wait(sid1, timeout_s=60.0)
        rec2 = c2.wait(sid2, timeout_s=60.0)
        out.expect_eq("daemon 1's sweep completes", rec1.get("state"), "done")
        out.expect_eq("daemon 2's sweep completes", rec2.get("state"), "done")
        # Rescan folds the sibling's submission + completion into each
        # daemon's local view of the shared journal (404 until the next
        # rescan tick discovers it).
        def _seen(client, sid):
            try:
                return client.job(sid).get("state")
            except Exception:
                return None

        crossed = _poll(lambda: (_seen(c1, sid2) == "done"
                                 and _seen(c2, sid1) == "done"), 15.0)
        out.expect("each daemon discovers the other's completion",
                   crossed,
                   f"d1 sees {_seen(c1, sid2)!r}, "
                   f"d2 sees {_seen(c2, sid1)!r}")
    finally:
        s1.stop()
        s2.stop()

    replayed = JobJournal(svc_dir / "jobs.jsonl").replay()
    out.expect_eq("both submissions journaled", len(replayed.submits), 2)
    out.expect_eq("no torn/interleaved journal records",
                  replayed.corrupt_lines, 0)
    out.expect_eq("nothing stays pending", replayed.pending(), [])
    ledger = RunLedger(svc_dir / "ledger.jsonl")
    records = ledger.scan()
    out.expect_eq("no torn/interleaved ledger records",
                  ledger.corrupt_lines, 0)
    out.expect_eq("ledger saw both daemons' jobs",
                  len({r["job_id"] for r in records if r.get("job_id")}), 12)
    fresh = _fresh_ledger_counts(svc_dir / "ledger.jsonl")
    out.expect_eq("every job fresh-executed exactly once",
                  sorted(fresh.values()), [1] * 12)
    return out


#: name → (scenario fn, default job count)
SCENARIOS: Dict[str, Tuple[Callable[[_Arena, int, int], ScenarioOutcome], int]] = {
    "kill": (scenario_kill, 8),
    "hang": (scenario_hang, 8),
    "exc": (scenario_exc, 6),
    "torn": (scenario_torn, 6),
    "ledger": (scenario_ledger, 4),
    "sanitizer": (scenario_sanitizer, 6),
    "combined": (scenario_combined, 16),
    "service_kill": (scenario_service_kill, 16),
    "service_drain": (scenario_service_drain, 16),
    "service_torn": (scenario_service_torn, 2),
    "service_shed": (scenario_service_shed, 3),
    "service_lock_takeover": (scenario_service_lock_takeover, 16),
    "service_poisoned": (scenario_service_poisoned, 6),
    "service_journal_race": (scenario_service_journal_race, 12),
}


def run_scenario(name: str, root: Path, jobs: Optional[int] = None,
                 workers: int = 4) -> ScenarioOutcome:
    fn, default_jobs = SCENARIOS[name]
    arena = _Arena(root, name)
    try:
        return fn(arena, jobs or default_jobs, workers)
    finally:
        arena.restore()


def run_suite(names: Optional[List[str]] = None,
              workdir: Optional[Path] = None,
              jobs: Optional[int] = None,
              workers: int = 4,
              keep: bool = False) -> List[ScenarioOutcome]:
    """Run chaos scenarios; returns their outcomes (pass/fail + checks).

    The scratch ``workdir`` (caches, checkpoints, chaos state) is
    deleted afterwards unless ``keep`` (or an explicit workdir) asks
    for it to stay for inspection.
    """
    selected = names or list(SCENARIOS)
    unknown = [n for n in selected if n not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown chaos scenario(s) {', '.join(unknown)}; "
            f"expected any of {', '.join(SCENARIOS)}"
        )
    owned = workdir is None
    root = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    try:
        return [run_scenario(n, root, jobs=jobs, workers=workers)
                for n in selected]
    finally:
        if owned and not keep:
            shutil.rmtree(root, ignore_errors=True)
