"""Hammering access patterns: single-, double-, and many-sided.

Two execution paths are provided, mirroring the two fidelity levels of
the simulator:

* the **device path** (``*_device``) drives the bank's exact bulk
  accounting — used for large campaigns (field study, ECC histograms);
* the **controller path** (:func:`hammer_via_controller`) issues every
  activation through the full command pipeline — timing, auto-refresh,
  perf counters, and any installed mitigation — used for mitigation
  effectiveness experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.controller.controller import MemoryController
from repro.dram.module import DramModule
from repro.dram.stream import CommandStream
from repro.utils.validation import check_positive


@dataclass
class HammerResult:
    """Outcome of one hammer session.

    Attributes:
        aggressors: physical rows hammered.
        activations_per_aggressor: bulk count applied to each.
        flips: (physical row, bit) pairs that flipped.
    """

    aggressors: Tuple[int, ...]
    activations_per_aggressor: int
    flips: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def flip_count(self) -> int:
        return len(self.flips)

    def victim_rows(self) -> List[int]:
        """Distinct rows containing flips."""
        return sorted({row for row, _bit in self.flips})


def _collect_new_flips(bank, before: int) -> List[Tuple[int, int]]:
    return [(row, bit) for row, bit, *_prov in bank.stats.flip_log[before:]]


def _hammer_stream(aggressors: Sequence[int], count: int) -> CommandStream:
    """The canonical hammer unit: bulk-activate each aggressor, settle."""
    stream = CommandStream()
    for aggressor in aggressors:
        stream.act(aggressor, count)
    return stream.settle()


def single_sided_device(module: DramModule, bank: int, aggressor: int, count: int) -> HammerResult:
    """Hammer one aggressor row ``count`` times (device fast path)."""
    check_positive("count", count)
    dev = module.bank(bank)
    before = len(dev.stats.flip_log)
    dev.execute(_hammer_stream((aggressor,), count))
    return HammerResult(
        aggressors=(aggressor,),
        activations_per_aggressor=count,
        flips=_collect_new_flips(dev, before),
    )


def double_sided_device(module: DramModule, bank: int, victim: int, count: int) -> HammerResult:
    """Hammer both neighbors of ``victim`` ``count`` times each."""
    check_positive("count", count)
    module.geometry.check_row(victim)
    aggressors = tuple(r for r in (victim - 1, victim + 1) if 0 <= r < module.geometry.rows)
    dev = module.bank(bank)
    before = len(dev.stats.flip_log)
    dev.execute(_hammer_stream(aggressors, count))
    return HammerResult(
        aggressors=aggressors,
        activations_per_aggressor=count,
        flips=_collect_new_flips(dev, before),
    )


def many_sided_device(
    module: DramModule, bank: int, aggressors: Sequence[int], count: int
) -> HammerResult:
    """Hammer an arbitrary aggressor set (TRRespass-style patterns)."""
    check_positive("count", count)
    dev = module.bank(bank)
    before = len(dev.stats.flip_log)
    dev.execute(_hammer_stream(tuple(aggressors), count))
    return HammerResult(
        aggressors=tuple(aggressors),
        activations_per_aggressor=count,
        flips=_collect_new_flips(dev, before),
    )


def hammer_via_controller(
    controller: MemoryController,
    bank: int,
    aggressor_rows: Sequence[int],
    iterations: int,
) -> int:
    """Issue ``iterations`` interleaved activation rounds through the full
    command pipeline; return the flips the run produced.

    Every activation is exposed to auto-refresh and the installed
    mitigation, so the return value measures *post-mitigation* errors.
    """
    check_positive("iterations", iterations)
    before = controller.module.total_flips()
    controller.run_activation_pattern(bank, list(aggressor_rows), iterations)
    controller.finish()
    return controller.module.total_flips() - before


def per_bank_budget_multibank(timing, n_banks: int, refresh_multiplier: float = 1.0) -> int:
    """Per-bank activation budget when hammering ``n_banks`` in parallel.

    A single-bank attacker is tRC-bound; a multi-bank attacker shares
    the rank's tRRD/tFAW activation rate across banks.  Total rank
    throughput rises with bank count until the rank limit saturates
    (at ``tRC * rank_rate`` banks), after which per-bank pressure falls
    — the engineering constraint behind multi-bank hammering.
    """
    check_positive("n_banks", n_banks)
    per_bank_rate = min(1.0 / timing.tRC, timing.rank_activation_rate_per_ns / n_banks)
    return int(per_bank_rate * timing.tREFW / refresh_multiplier)


def multibank_attack_scaling(module_factory, bank_counts=(1, 2, 4, 8)) -> list:
    """Total victim flips vs simultaneously hammered banks.

    ``module_factory()`` must return a fresh module per configuration.
    Each hammered bank gets one double-sided victim at its per-bank
    budget (device path).  Shows throughput scaling and its tFAW
    saturation point.
    """
    out = []
    for n_banks in bank_counts:
        module = module_factory()
        budget = per_bank_budget_multibank(module.timing, n_banks)
        total = 0
        for bank in range(min(n_banks, module.geometry.banks)):
            result = double_sided_device(module, bank, victim=1000, count=budget // 2)
            total += sum(1 for row, _bit in result.flips if row == 1000)
        out.append(
            {
                "banks": n_banks,
                "per_bank_budget": budget,
                "victim_flips_total": total,
            }
        )
    return out


def max_double_sided_budget(module: DramModule, refresh_multiplier: float = 1.0) -> int:
    """Per-aggressor activation budget of a double-sided attack within one
    (possibly shortened) refresh window.

    The two aggressors alternate, so each gets half the window's
    activation slots — but the shared victim accumulates both streams.
    """
    timing = module.timing
    return int(timing.tREFW / refresh_multiplier / timing.tRC / 2)
