"""RowHammer attack patterns, invariant checkers, and exploitation models."""

from repro.attacks.hammer import (
    HammerResult,
    double_sided_device,
    hammer_via_controller,
    many_sided_device,
    max_double_sided_budget,
    multibank_attack_scaling,
    per_bank_budget_multibank,
    single_sided_device,
)
from repro.attacks.invariants import IsolationReport, check_read_isolation, check_write_isolation
from repro.attacks.privilege import (
    PFN_BIT_RANGE,
    FlipTemplate,
    default_ffs_predicate,
    drammer_success_probability,
    flip_feng_shui_templates,
    javascript_success_probability,
    pte_spray_success_probability,
    scan_templates,
)

__all__ = [
    "HammerResult",
    "double_sided_device",
    "hammer_via_controller",
    "many_sided_device",
    "max_double_sided_budget",
    "multibank_attack_scaling",
    "per_bank_budget_multibank",
    "single_sided_device",
    "IsolationReport",
    "check_read_isolation",
    "check_write_isolation",
    "PFN_BIT_RANGE",
    "FlipTemplate",
    "default_ffs_predicate",
    "drammer_success_probability",
    "flip_feng_shui_templates",
    "javascript_success_probability",
    "pte_spray_success_probability",
    "scan_templates",
]
