"""Exploitation models: turning bit flips into system compromise (§II-B).

The paper lists four demonstrated attack classes built on RowHammer:

* **kernel privilege escalation** from user level (Google Project Zero
  [89, 90]) — spray physical memory with page-table pages, hammer, and
  hope a flip lands in the PFN field of an attacker-readable PTE so it
  points into attacker-controlled memory;
* **remote JavaScript** takeover [33] — same flip physics, with the
  aggressor-selection constraint that the attacker has no physical
  address knowledge (modeled as random aggressor choice);
* **VM-on-VM / Flip Feng Shui** [86] — memory deduplication gives the
  attacker *deterministic placement* of a victim page onto a
  previously templated flip location;
* **Drammer on mobile** [98] — no permissions, but aggressor choice is
  restricted to physically *contiguous* allocations.

We model each as a success-probability computation over the module's
**flip templates** — the deterministic weak-cell map the fault model
exposes — which is faithful to how the real attacks operate (they all
begin with a templating scan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.dram.module import DramModule
from repro.utils.rng import derive_rng
from repro.utils.validation import check_probability

#: x86-64 PTE physical-frame-number field: bits 12..51 of the 64-bit entry.
PFN_BIT_RANGE = (12, 52)


@dataclass(frozen=True)
class FlipTemplate:
    """One repeatable flip location discovered by a templating scan.

    Attributes:
        bank, row, bit: physical flip location (bit is the row-bit index).
        direction: ``"1to0"`` (true cell) or ``"0to1"`` (anti cell).
        hc_first: activation threshold of the underlying weak cell.
    """

    bank: int
    row: int
    bit: int
    direction: str
    hc_first: float

    @property
    def word_bit_offset(self) -> int:
        """Offset within the containing 64-bit word."""
        return self.bit % 64


def scan_templates(
    module: DramModule,
    bank: int,
    rows: Sequence[int],
    pressure: float,
) -> List[FlipTemplate]:
    """Templating scan: every weak cell reachable at ``pressure``.

    Uses the device fault map directly (a real scan hammers each victim
    with adversarial patterns, revealing precisely this set).
    """
    templates: List[FlipTemplate] = []
    model = module.model
    for row in rows:
        cells = model.weak_cells(bank, row)
        if not len(cells):
            continue
        reachable = cells.hc_first <= pressure
        for bit, hc, anti in zip(
            cells.bits[reachable], cells.hc_first[reachable], cells.anti[reachable]
        ):
            templates.append(
                FlipTemplate(
                    bank=bank,
                    row=int(row),
                    bit=int(bit),
                    direction="0to1" if anti else "1to0",
                    hc_first=float(hc),
                )
            )
    return templates


# ----------------------------------------------------------------------
# Attack 1: PTE spray (kernel privilege escalation)
# ----------------------------------------------------------------------
def pte_spray_success_probability(
    templates: Sequence[FlipTemplate],
    spray_fraction: float,
    trials: int = 2000,
    seed: int = 0,
) -> float:
    """Monte-Carlo success probability of the Project-Zero-style attack.

    Each trial: every templated victim row independently hosts
    attacker page-table pages with probability ``spray_fraction``
    (spray coverage of physical memory); a flip whose bit offset falls
    in the PTE's PFN field redirects that PTE to a random frame, which
    is attacker-controlled again with probability ``spray_fraction``.
    The attack succeeds if any template fires usefully.
    """
    check_probability("spray_fraction", spray_fraction)
    if not templates:
        return 0.0
    rng = derive_rng(seed, "pte-spray")
    lo, hi = PFN_BIT_RANGE
    usable = [t for t in templates if lo <= t.word_bit_offset < hi]
    if not usable:
        return 0.0
    successes = 0
    n = len(usable)
    for _ in range(trials):
        sprayed = rng.random(n) < spray_fraction
        redirect_ok = rng.random(n) < spray_fraction
        if np.any(sprayed & redirect_ok):
            successes += 1
    return successes / trials


# ----------------------------------------------------------------------
# Attack 2: Flip Feng Shui (deterministic placement via dedup)
# ----------------------------------------------------------------------
def default_ffs_predicate(template: FlipTemplate) -> bool:
    """A usable FFS template: flips a byte in the region of a page where
    the target cryptographic material (e.g. an RSA modulus in an
    authorized_keys page) resides — modeled as the second quarter of
    the 4 KiB page, any direction."""
    byte_in_page = (template.bit // 8) % 4096
    return 1024 <= byte_in_page < 2048


def flip_feng_shui_templates(
    templates: Sequence[FlipTemplate],
    predicate: Callable[[FlipTemplate], bool] = default_ffs_predicate,
) -> List[FlipTemplate]:
    """Templates usable by Flip Feng Shui under ``predicate``.

    With memory deduplication the attacker chooses where the victim
    page lands, so the attack succeeds deterministically iff this list
    is non-empty.
    """
    return [t for t in templates if predicate(t)]


# ----------------------------------------------------------------------
# Attack 3: Drammer (contiguity-constrained mobile attack)
# ----------------------------------------------------------------------
def drammer_success_probability(
    templates: Sequence[FlipTemplate],
    total_rows: int,
    chunk_rows: int,
    trials: int = 2000,
    seed: int = 0,
) -> float:
    """Success probability when the attacker controls one random
    physically contiguous chunk of ``chunk_rows`` rows.

    A template is reachable if its victim row and both neighbors lie
    inside the chunk (double-sided hammering needs both aggressors).
    """
    if chunk_rows < 3 or not templates:
        return 0.0
    rng = derive_rng(seed, "drammer")
    victim_rows = np.array(sorted({t.row for t in templates}))
    successes = 0
    max_start = max(1, total_rows - chunk_rows)
    for _ in range(trials):
        start = int(rng.integers(0, max_start))
        lo, hi = start + 1, start + chunk_rows - 1  # need row-1 and row+1 inside
        if np.any((victim_rows >= lo) & (victim_rows < hi)):
            successes += 1
    return successes / trials


# ----------------------------------------------------------------------
# Attack 4: remote JavaScript (no address knowledge)
# ----------------------------------------------------------------------
def javascript_success_probability(
    templates: Sequence[FlipTemplate],
    total_rows: int,
    aggressor_attempts: int,
    trials: int = 1000,
    seed: int = 0,
) -> float:
    """Success probability when aggressor rows are chosen blindly.

    The JavaScript attacker cannot resolve physical addresses, so each
    attempt hammers a random row pair; an attempt pays off if it
    brackets a templated victim.
    """
    if not templates:
        return 0.0
    rng = derive_rng(seed, "js")
    victim_rows = {t.row for t in templates}
    successes = 0
    for _ in range(trials):
        picks = rng.integers(1, total_rows - 1, size=aggressor_attempts)
        if any(int(v) in victim_rows for v in picks):
            successes += 1
    return successes / trials
