"""Memory-isolation invariant checkers (claim C2).

§II-A: RowHammer errors "violate two invariants that memory should
provide: (i) a read access should not modify data at any address and
(ii) a write access should modify data only at the address that it is
supposed to write to", and "all of which occur in rows other than the
one that is being accessed".

These checkers run an access loop (pure reads, or pure writes of the
same value) against an initialized region and report exactly which
addresses changed, partitioned into the accessed row vs others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.dram.module import DramModule


@dataclass
class IsolationReport:
    """Result of an invariant check.

    Attributes:
        accessed_row: the (physical) row the access loop targeted.
        accessed_row_changed: whether the accessed row's own data changed
            (it must not, for both reads and idempotent writes).
        corrupted_rows: map of other physical rows -> flipped bit indices.
    """

    accessed_row: int
    accessed_row_changed: bool = False
    corrupted_rows: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def violated(self) -> bool:
        """Whether memory isolation was violated anywhere."""
        return bool(self.corrupted_rows) or self.accessed_row_changed

    @property
    def total_corrupted_bits(self) -> int:
        return sum(len(bits) for bits in self.corrupted_rows.values())


def _snapshot(module: DramModule, bank: int, rows) -> Dict[int, np.ndarray]:
    dev = module.bank(bank)
    return {row: dev.row_bits(row).copy() for row in rows}


def _diff(module: DramModule, bank: int, baseline: Dict[int, np.ndarray], accessed: int) -> IsolationReport:
    dev = module.bank(bank)
    dev.settle()
    report = IsolationReport(accessed_row=accessed)
    for row, before in baseline.items():
        after = dev.row_bits(row)
        changed = np.nonzero(before != after)[0]
        if len(changed) == 0:
            continue
        if row == accessed:
            report.accessed_row_changed = True
        else:
            report.corrupted_rows[row] = [int(b) for b in changed]
    return report


def check_read_isolation(
    module: DramModule,
    bank: int,
    accessed_row: int,
    read_count: int,
    watch_radius: int = 3,
) -> IsolationReport:
    """Repeatedly *read* one row; report any data change anywhere nearby.

    Reads are modeled as activations (every DRAM read opens the row).
    """
    rows = [r for r in range(accessed_row - watch_radius, accessed_row + watch_radius + 1) if 0 <= r < module.geometry.rows]
    baseline = _snapshot(module, bank, rows)
    dev = module.bank(bank)
    dev.bulk_activate(accessed_row, read_count)
    return _diff(module, bank, baseline, accessed_row)


def check_write_isolation(
    module: DramModule,
    bank: int,
    accessed_row: int,
    write_count: int,
    watch_radius: int = 3,
) -> IsolationReport:
    """Repeatedly *write the same data back* to one row; report changes
    at any other address (the accessed row legitimately holds the
    written value, so it is checked for equality with that value)."""
    rows = [r for r in range(accessed_row - watch_radius, accessed_row + watch_radius + 1) if 0 <= r < module.geometry.rows]
    baseline = _snapshot(module, bank, rows)
    dev = module.bank(bank)
    written = baseline[accessed_row].copy()
    # Writes activate the row each time; chunk them through the exact
    # bulk path then re-assert the written data (write-same-value loop).
    dev.bulk_activate(accessed_row, write_count)
    dev.write(accessed_row, written)
    return _diff(module, bank, baseline, accessed_row)
