"""Emerging memories (§III): STT-MRAM and RRAM reliability models."""

from repro.emerging.rram import RramCrossbar, RramParams, crossbar_hammer_study
from repro.emerging.sttmram import (
    SttMramArray,
    SttParams,
    read_disturb_probability,
    retention_failure_probability,
    scaling_study,
)

__all__ = [
    "RramCrossbar",
    "RramParams",
    "crossbar_hammer_study",
    "SttMramArray",
    "SttParams",
    "read_disturb_probability",
    "retention_failure_probability",
    "scaling_study",
]
