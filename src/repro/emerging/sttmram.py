"""STT-MRAM reliability model: read disturb, write error, retention.

§III: emerging memories such as STT-MRAM "are likely to exhibit
similar and perhaps even more exacerbated reliability issues".
STT-MRAM's three canonical error mechanisms all derive from the same
thermal-activation physics over the free layer's energy barrier
(thermal stability factor Δ):

* **retention**: spontaneous switching at rate ``f0 * exp(-Δ)``;
* **read disturb**: the read current lowers the effective barrier to
  ``Δ (1 - I_read / Ic0)`` — every read is a weak write, the MRAM
  analogue of the paper's disturbance theme;
* **write error**: an under-driven or under-timed write fails to
  switch with probability ``exp(-Δ_write_margin)`` (modeled as a
  per-write constant derived from the overdrive).

Scaling makes all three worse at once: smaller free layers mean lower
Δ, which is exactly the §III "denser = less reliable" trend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.rng import derive_rng
from repro.utils.units import SECONDS_PER_YEAR
from repro.utils.validation import check_in_range, check_positive

#: Attempt frequency of thermal switching (Hz).
ATTEMPT_FREQUENCY_HZ = 1e9


@dataclass(frozen=True)
class SttParams:
    """STT-MRAM cell parameters.

    Attributes:
        delta: thermal stability factor (Δ = E_b / kT); ~60 at mature
            nodes, dropping as the free layer shrinks.
        delta_sigma: cell-to-cell spread of Δ.
        read_current_ratio: I_read / Ic0 — the disturb strength knob.
        read_pulse_ns: read pulse duration.
        write_error_rate: per-write switching-failure probability.
    """

    delta: float = 60.0
    delta_sigma: float = 2.5
    read_current_ratio: float = 0.3
    read_pulse_ns: float = 10.0
    write_error_rate: float = 1e-9

    def __post_init__(self) -> None:
        check_positive("delta", self.delta)
        check_in_range("read_current_ratio", self.read_current_ratio, 0.0, 0.99)
        check_positive("read_pulse_ns", self.read_pulse_ns)


def retention_failure_probability(delta: float, seconds: float) -> float:
    """Probability one cell spontaneously flips within ``seconds``."""
    check_positive("delta", max(delta, 1e-12))
    rate = ATTEMPT_FREQUENCY_HZ * math.exp(-delta)
    return 1.0 - math.exp(-rate * seconds)


def read_disturb_probability(delta: float, read_current_ratio: float, pulse_ns: float) -> float:
    """Probability one read flips the cell (thermal activation with the
    barrier lowered by the read current)."""
    effective_delta = delta * (1.0 - read_current_ratio)
    rate = ATTEMPT_FREQUENCY_HZ * math.exp(-effective_delta)
    return 1.0 - math.exp(-rate * pulse_ns * 1e-9)


class SttMramArray:
    """An STT-MRAM array with per-cell thermal stability.

    Args:
        cells: array size.
        params: device parameters.
        seed: per-array Δ draw.
    """

    def __init__(self, cells: int = 1 << 20, params: SttParams = SttParams(), seed: int = 0) -> None:
        check_positive("cells", cells)
        rng = derive_rng(seed, "stt")
        self.params = params
        self.delta = np.clip(
            rng.normal(params.delta, params.delta_sigma, size=cells), 5.0, None
        )
        self._rng = derive_rng(seed, "stt-events")
        self.cells = cells

    def expected_read_disturb_errors(self, reads_per_cell: int) -> float:
        """Expected flips after every cell is read ``reads_per_cell`` times."""
        if reads_per_cell < 0:
            raise ValueError("reads_per_cell must be >= 0")
        p = 1.0 - np.exp(
            -ATTEMPT_FREQUENCY_HZ
            * np.exp(-self.delta * (1.0 - self.params.read_current_ratio))
            * self.params.read_pulse_ns
            * 1e-9
            * reads_per_cell
        )
        return float(p.sum())

    def sample_read_disturb_errors(self, reads_per_cell: int) -> int:
        """Sampled flip count for one experiment run."""
        p = 1.0 - np.exp(
            -ATTEMPT_FREQUENCY_HZ
            * np.exp(-self.delta * (1.0 - self.params.read_current_ratio))
            * self.params.read_pulse_ns
            * 1e-9
            * reads_per_cell
        )
        return int((self._rng.random(self.cells) < p).sum())

    def expected_retention_errors(self, years: float) -> float:
        """Expected spontaneous flips over ``years``."""
        if years < 0:
            raise ValueError("years must be >= 0")
        p = 1.0 - np.exp(
            -ATTEMPT_FREQUENCY_HZ * np.exp(-self.delta) * years * SECONDS_PER_YEAR
        )
        return float(p.sum())


def scaling_study(
    deltas=(70.0, 60.0, 50.0, 40.0),
    reads_per_cell: int = 1_000_000,
    read_current_ratio: float = 0.3,
    cells: int = 1 << 20,
    seed: int = 0,
) -> List[dict]:
    """Error rates vs thermal stability — the density-scaling trend.

    Lower Δ (smaller cell) raises read-disturb and retention errors
    simultaneously; the §III claim in one table.
    """
    rows = []
    for delta in deltas:
        params = SttParams(delta=delta, read_current_ratio=read_current_ratio)
        array = SttMramArray(cells=cells, params=params, seed=seed)
        rows.append(
            {
                "delta": delta,
                "read_disturb_errors": array.expected_read_disturb_errors(reads_per_cell),
                "retention_errors_10y": array.expected_retention_errors(10.0),
                "per_read_disturb_probability": read_disturb_probability(
                    delta, read_current_ratio, params.read_pulse_ns
                ),
            }
        )
    return rows
