"""RRAM crossbar model: half-select disturb — a RowHammer analogue.

§III lists RRAM/memristors among the emerging technologies whose
reliability problems may surface as security problems.  The structural
parallel to RowHammer is striking: in a crossbar, accessing one cell
puts *half* the select voltage across every other cell sharing its row
or column.  Each half-select event weakly stresses those neighbors;
enough repeated accesses to one address drift a shared-line neighbor's
filament across the read margin — repeatedly accessing one address
corrupts data at other addresses, the exact isolation violation of
§II-A, in a different technology.

The model mirrors the DRAM disturbance machinery: per-cell half-select
endurance thresholds (lognormal), accumulated stress per shared-line
access, reset on rewrite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RramParams:
    """Crossbar disturb parameters.

    Attributes:
        hs_threshold_median: median half-select events to flip a cell.
        hs_threshold_sigma: lognormal spread.
        hs_threshold_min: weakest-cell floor.
    """

    hs_threshold_median: float = 5e6
    hs_threshold_sigma: float = 0.6
    hs_threshold_min: float = 2e5

    def __post_init__(self) -> None:
        check_positive("hs_threshold_median", self.hs_threshold_median)
        check_positive("hs_threshold_min", self.hs_threshold_min)
        if self.hs_threshold_min > self.hs_threshold_median:
            raise ValueError("hs_threshold_min must not exceed the median")


class RramCrossbar:
    """One crossbar tile with half-select disturb accounting.

    Args:
        rows, cols: tile dimensions.
        params: disturb parameters.
        seed: per-tile threshold draw.
    """

    def __init__(self, rows: int = 256, cols: int = 256, params: RramParams = RramParams(), seed: int = 0) -> None:
        check_positive("rows", rows)
        check_positive("cols", cols)
        rng = derive_rng(seed, "rram")
        self.rows = rows
        self.cols = cols
        self.params = params
        mu = np.log(params.hs_threshold_median)
        thresholds = np.exp(rng.normal(mu, params.hs_threshold_sigma, size=(rows, cols)))
        self.thresholds = np.maximum(thresholds, params.hs_threshold_min)
        self.stress = np.zeros((rows, cols), dtype=np.float64)
        self.flipped = np.zeros((rows, cols), dtype=bool)

    def access(self, row: int, col: int, count: int = 1) -> None:
        """``count`` full-select accesses of one cell.

        Row- and column-sharing cells each take ``count`` half-select
        events; the accessed cell itself is fully re-biased (its
        accumulated stress resets, like a DRAM row's own activation).
        """
        if not 0 <= row < self.rows or not 0 <= col < self.cols:
            raise IndexError("cell out of range")
        if count < 0:
            raise ValueError("count must be >= 0")
        self.stress[row, :] += count
        self.stress[:, col] += count
        self.stress[row, col] = 0.0
        self._materialize()

    def rewrite(self, row: int, col: int) -> None:
        """Rewrite one cell: clears its flip and its accumulated stress."""
        self.stress[row, col] = 0.0
        self.flipped[row, col] = False

    def _materialize(self) -> None:
        self.flipped |= self.stress >= self.thresholds

    def flipped_cells(self) -> List[Tuple[int, int]]:
        """Coordinates of disturbed cells."""
        rows, cols = np.nonzero(self.flipped)
        return list(zip(rows.tolist(), cols.tolist()))

    def flip_count(self) -> int:
        return int(self.flipped.sum())


def crossbar_hammer_study(
    accesses=(1e5, 1e6, 1e7),
    rows: int = 256,
    cols: int = 256,
    seed: int = 0,
) -> List[dict]:
    """Hammer one crossbar address; count shared-line victims.

    The RowHammer-shaped result: victims appear once the access count
    crosses the weakest shared-line cell's threshold, and they are all
    in the aggressor's row or column — never elsewhere.
    """
    out = []
    for count in accesses:
        tile = RramCrossbar(rows=rows, cols=cols, seed=seed)
        tile.access(rows // 2, cols // 2, int(count))
        victims = tile.flipped_cells()
        on_shared_lines = all(r == rows // 2 or c == cols // 2 for r, c in victims)
        out.append(
            {
                "accesses": int(count),
                "victims": len(victims),
                "all_on_shared_lines": on_shared_lines,
            }
        )
    return out
