"""The mitigation hook interface the controller exposes.

A mitigation observes the controller's command stream (activations and
periodic refresh ticks) and may inject victim-row refreshes.  Whether
it sees *true* physical adjacency (in-DRAM implementations, or a
controller with SPD-published mapping) or must guess from logical
addresses is the controller's ``spd_adjacency`` setting — the exact
deployment question §II-C raises for PARA.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.controller.controller import MemoryController


@runtime_checkable
class MitigationHook(Protocol):
    """Protocol every RowHammer mitigation implements."""

    #: short identifier used in reports
    name: str

    def on_activate(self, controller: "MemoryController", bank: int, logical_row: int, time_ns: float) -> None:
        """Called after every row activation the controller issues."""

    def extra_refresh_ops(self) -> int:
        """Victim-refresh operations this mitigation has injected."""


class NullMitigation:
    """No mitigation — the unprotected baseline."""

    name = "none"

    def on_activate(self, controller: "MemoryController", bank: int, logical_row: int, time_ns: float) -> None:
        """Do nothing."""

    def extra_refresh_ops(self) -> int:
        """No extra refreshes."""
        return 0
