"""Per-command DRAM energy accounting.

Constants are representative of a 2 Gb DDR3 device (derived from
IDD-style datasheet arithmetic); the experiments only rely on
*relative* overheads — e.g. the energy cost of refreshing 7x more
often, or of PARA's occasional extra row activations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class EnergyParams:
    """Energy per DRAM command, in nanojoules."""

    act_nj: float = 9.0
    pre_nj: float = 4.0
    read_nj: float = 13.0
    write_nj: float = 13.5
    refresh_row_nj: float = 13.0  # one internal row refresh (act+pre)
    background_nw_per_ns: float = 0.08  # standby power, nJ per ns


@dataclass
class EnergyAccount:
    """Accumulated energy over a simulation.

    Attributes:
        params: per-command constants.
        counts: number of each command issued.
    """

    params: EnergyParams = field(default_factory=EnergyParams)
    counts: Dict[str, int] = field(default_factory=lambda: {"act": 0, "pre": 0, "read": 0, "write": 0, "refresh_row": 0})
    elapsed_ns: float = 0.0

    def record(self, command: str, count: int = 1) -> None:
        """Record ``count`` commands of the given kind."""
        if command not in self.counts:
            raise KeyError(f"unknown command {command!r}; options: {sorted(self.counts)}")
        self.counts[command] += count

    def advance(self, dt_ns: float) -> None:
        """Accumulate background time."""
        self.elapsed_ns += dt_ns

    @property
    def dynamic_nj(self) -> float:
        """Dynamic (per-command) energy."""
        p = self.params
        c = self.counts
        return (
            c["act"] * p.act_nj
            + c["pre"] * p.pre_nj
            + c["read"] * p.read_nj
            + c["write"] * p.write_nj
            + c["refresh_row"] * p.refresh_row_nj
        )

    @property
    def background_nj(self) -> float:
        """Standby energy over the elapsed simulated time."""
        return self.elapsed_ns * self.params.background_nw_per_ns

    @property
    def total_nj(self) -> float:
        """Dynamic + background energy."""
        return self.dynamic_nj + self.background_nj

    def refresh_share(self) -> float:
        """Fraction of dynamic energy spent on refresh."""
        dynamic = self.dynamic_nj
        if dynamic == 0:
            return 0.0
        return self.counts["refresh_row"] * self.params.refresh_row_nj / dynamic
