"""An open-page, timing-respecting request scheduler.

This is the *performance* measurement device of the reproduction: it
services a request trace against DDR timing, stalling for REF commands
(whose rate scales with the refresh multiplier) and for any extra
activations a mitigation injects.  Benches C3/C7 use it to price the
refresh-based mitigation in latency and throughput, as §II-C does
qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.controller.energy import EnergyAccount
from repro.controller.request import MemRequest
from repro.dram.timing import TimingParams
from repro.telemetry import runtime as telem
from repro.utils.validation import check_positive

#: Data-burst occupancy on the bus per column access (8 beats, DDR3-1333).
T_BURST_NS = 6.0

#: Request-latency histogram edges (ns).
LATENCY_BUCKETS_NS = (25, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800)


@dataclass
class SchedulerStats:
    """Aggregate results of scheduling one trace."""

    requests: int = 0
    row_hits: int = 0
    row_misses: int = 0
    total_latency_ns: float = 0.0
    finish_ns: float = 0.0
    refresh_stall_ns: float = 0.0
    queue_depth_peak: int = 0
    latencies: List[float] = field(default_factory=list)

    @property
    def avg_latency_ns(self) -> float:
        """Mean request latency."""
        return self.total_latency_ns / self.requests if self.requests else 0.0

    @property
    def hit_rate(self) -> float:
        """Row-buffer hit rate."""
        return self.row_hits / self.requests if self.requests else 0.0

    @property
    def throughput_rps(self) -> float:
        """Requests per second of simulated time."""
        return self.requests / (self.finish_ns * 1e-9) if self.finish_ns > 0 else 0.0


def record_scheduler_metrics(stats: SchedulerStats, policy: str) -> None:
    """Feed one trace's aggregate scheduling results into telemetry.

    Called once per :meth:`execute` (not per request) so the scheduler
    hot loop never pays a telemetry lookup.
    """
    telem.counter("sched_requests_total", policy=policy).inc(stats.requests)
    telem.counter("sched_row_hits_total", policy=policy).inc(stats.row_hits)
    telem.counter("sched_row_misses_total", policy=policy).inc(stats.row_misses)
    telem.counter("sched_refresh_stall_ns_total", policy=policy).inc(stats.refresh_stall_ns)
    telem.gauge("sched_queue_depth_peak", policy=policy).set_max(stats.queue_depth_peak)
    hist = telem.histogram("sched_latency_ns", edges=LATENCY_BUCKETS_NS, policy=policy)
    for latency in stats.latencies:
        hist.observe(latency)


class CommandScheduler:
    """Schedules row-granular requests over one rank.

    Args:
        banks: number of banks.
        timing: DDR timing parameters.
        refresh_multiplier: scales the REF rate (the mitigation knob).
        energy: optional energy account to charge.
    """

    def __init__(
        self,
        banks: int,
        timing: TimingParams,
        refresh_multiplier: float = 1.0,
        energy: Optional[EnergyAccount] = None,
    ) -> None:
        check_positive("banks", banks)
        check_positive("refresh_multiplier", refresh_multiplier)
        self.banks = banks
        self.timing = timing
        self.refresh_multiplier = refresh_multiplier
        self.energy = energy
        self.ref_interval_ns = timing.tREFI / refresh_multiplier
        self._next_ref_ns = self.ref_interval_ns
        self._bank_ready = [0.0] * banks
        self._open_row: List[Optional[int]] = [None] * banks
        self._bus_ready = 0.0

    def _refresh_stall(self, t: float, stats: SchedulerStats) -> float:
        """Apply any REF blocking that precedes time ``t``; return new time."""
        while t >= self._next_ref_ns:
            ref_end = self._next_ref_ns + self.timing.tRFC
            if t < ref_end:
                stats.refresh_stall_ns += ref_end - t
                t = ref_end
            if self.energy is not None:
                # One REF covers a chunk of rows; charge a representative
                # per-command cost (rows_per_ref internal row refreshes).
                self.energy.record("refresh_row", count=8)
            self._next_ref_ns += self.ref_interval_ns
        return t

    def execute(self, requests: Iterable[MemRequest]) -> SchedulerStats:
        """Service ``requests`` (must be sorted by arrival); fills their
        ``completed_ns`` and returns aggregate statistics."""
        with telem.span("sched.execute", policy="inorder"):
            return self._execute_body(requests)

    def _execute_body(self, requests: Iterable[MemRequest]) -> SchedulerStats:
        stats = SchedulerStats()
        timing = self.timing
        for req in requests:
            if not 0 <= req.bank < self.banks:
                raise IndexError(f"bank {req.bank} out of range")
            start = max(req.arrival_ns, self._bank_ready[req.bank], self._bus_ready)
            start = self._refresh_stall(start, stats)
            if self._open_row[req.bank] == req.row:
                stats.row_hits += 1
                data_at = start + timing.tCL
                self._bank_ready[req.bank] = start + T_BURST_NS
            else:
                stats.row_misses += 1
                data_at = start + timing.tRP + timing.tRCD + timing.tCL
                self._bank_ready[req.bank] = start + timing.tRP + timing.tRC
                self._open_row[req.bank] = req.row
                if self.energy is not None:
                    self.energy.record("pre")
                    self.energy.record("act")
            if self.energy is not None:
                self.energy.record("write" if req.is_write else "read")
            complete = data_at + T_BURST_NS
            self._bus_ready = data_at + T_BURST_NS
            req.completed_ns = complete
            stats.requests += 1
            stats.total_latency_ns += complete - req.arrival_ns
            stats.latencies.append(complete - req.arrival_ns)
            stats.finish_ns = max(stats.finish_ns, complete)
        if self.energy is not None:
            self.energy.advance(stats.finish_ns - self.energy.elapsed_ns if stats.finish_ns > self.energy.elapsed_ns else 0.0)
        if telem.metrics_on:
            record_scheduler_metrics(stats, policy="inorder")
        return stats
