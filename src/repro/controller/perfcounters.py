"""Hardware-performance-counter model.

ANVIL-style software mitigations (§II-C) sample CPU performance
counters to spot hammering: an extreme rate of row activations (cache
misses to the same DRAM row) inside a sampling window.  This model
exposes exactly what such a detector can see — per-window aggregate
activation counts and the hottest (bank, row) sources — without giving
it device internals.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class WindowSample:
    """One completed sampling window.

    Attributes:
        start_ns, end_ns: window bounds.
        total_activations: activations observed in the window.
        hot_rows: the top (bank, row) activation sources, descending.
    """

    start_ns: float
    end_ns: float
    total_activations: int
    hot_rows: List[Tuple[Tuple[int, int], int]] = field(default_factory=list)

    @property
    def peak_row_count(self) -> int:
        """Activation count of the hottest row in the window."""
        return self.hot_rows[0][1] if self.hot_rows else 0


class PerfCounters:
    """Windowed activation counters the controller feeds.

    Args:
        window_ns: sampling window length.
        top_k: number of hot rows retained per window.
    """

    def __init__(self, window_ns: float = 1_000_000.0, top_k: int = 8) -> None:
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        self.window_ns = window_ns
        self.top_k = top_k
        self.window_start = 0.0
        self._counts: Counter = Counter()
        self.samples: List[WindowSample] = []

    def record_activate(self, bank: int, row: int, time_ns: float) -> None:
        """Feed one activation; closes windows as time advances."""
        while time_ns >= self.window_start + self.window_ns:
            self._close_window()
        self._counts[(bank, row)] += 1

    def _close_window(self) -> None:
        hot = self._counts.most_common(self.top_k)
        self.samples.append(
            WindowSample(
                start_ns=self.window_start,
                end_ns=self.window_start + self.window_ns,
                total_activations=sum(self._counts.values()),
                hot_rows=hot,
            )
        )
        self._counts.clear()
        self.window_start += self.window_ns

    def flush(self, time_ns: float) -> None:
        """Close any windows pending up to ``time_ns``."""
        while time_ns >= self.window_start + self.window_ns:
            self._close_window()

    def current_counts(self) -> Dict[Tuple[int, int], int]:
        """Counts accumulated in the open window."""
        return dict(self._counts)
