"""The memory controller: glue between workloads, device, and mitigations.

The controller advances simulated time command by command (tRC per
activation, tRFC per REF), drives the module's banks, feeds performance
counters, and invokes the installed mitigation hook after every
activation.  Mitigations request victim refreshes through
:meth:`MemoryController.refresh_neighbors`, which resolves adjacency
either through the SPD-published mapping (``spd_adjacency=True``, the
paper's proposal) or by naive logical +/-1 guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.controller.energy import EnergyAccount
from repro.controller.hooks import MitigationHook, NullMitigation
from repro.controller.perfcounters import PerfCounters
from repro.controller.refresh import RefreshEngine
from repro.dram.module import DramModule
from repro.telemetry import runtime as telem


@dataclass
class ControllerStats:
    """Aggregate controller activity."""

    activations: int = 0
    mitigation_refreshes: int = 0
    flips_observed: int = 0
    flip_events: List[tuple] = field(default_factory=list)


class MemoryController:
    """A mitigation-aware DRAM controller.

    Args:
        module: device under control.
        mitigation: installed RowHammer mitigation (default: none).
        refresh_multiplier: auto-refresh rate multiplier.
        spd_adjacency: whether victim-refresh requests use the true
            (SPD-published) adjacency or naive logical +/-1.
        perf_window_ns: performance-counter sampling window.
    """

    def __init__(
        self,
        module: DramModule,
        mitigation: Optional[MitigationHook] = None,
        refresh_multiplier: float = 1.0,
        spd_adjacency: bool = True,
        perf_window_ns: float = 1_000_000.0,
        refresh_row_bins=None,
    ) -> None:
        self.module = module
        self.mitigation = mitigation if mitigation is not None else NullMitigation()
        self.refresh_engine = RefreshEngine(module, refresh_multiplier, row_bins=refresh_row_bins)
        self.energy = EnergyAccount()
        self.perf = PerfCounters(window_ns=perf_window_ns)
        self.spd_adjacency = spd_adjacency
        self.time_ns = 0.0
        self.stats = ControllerStats()

    # ------------------------------------------------------------------
    # Primitive operations
    # ------------------------------------------------------------------
    def activate(self, bank: int, logical_row: int) -> None:
        """Issue ACT+PRE to ``(bank, logical_row)``, advancing time by tRC."""
        self.module.activate(bank, logical_row, self.time_ns)
        self.module.precharge(bank)
        self.time_ns += self.module.timing.tRC
        self.energy.record("act")
        self.energy.record("pre")
        self.stats.activations += 1
        if telem.metrics_on:
            telem.counter("ctrl_commands_total", kind="activate").inc()
        self.perf.record_activate(bank, logical_row, self.time_ns)
        self.mitigation.on_activate(self, bank, logical_row, self.time_ns)
        self._service_refresh()

    def read(self, bank: int, logical_row: int):
        """Activate-and-read one row; returns its bits."""
        bits = self.module.read_row(bank, logical_row, self.time_ns)
        self.module.precharge(bank)
        self.time_ns += self.module.timing.tRC
        self.energy.record("act")
        self.energy.record("read")
        self.energy.record("pre")
        self.stats.activations += 1
        if telem.metrics_on:
            telem.counter("ctrl_commands_total", kind="read").inc()
        self.perf.record_activate(bank, logical_row, self.time_ns)
        self.mitigation.on_activate(self, bank, logical_row, self.time_ns)
        self._service_refresh()
        return bits

    def write(self, bank: int, logical_row: int, bits) -> None:
        """Activate-and-write one row."""
        self.module.write_row(bank, logical_row, bits, self.time_ns)
        self.module.precharge(bank)
        self.time_ns += self.module.timing.tRC
        self.energy.record("act")
        self.energy.record("write")
        self.energy.record("pre")
        self.stats.activations += 1
        if telem.metrics_on:
            telem.counter("ctrl_commands_total", kind="write").inc()
        self.perf.record_activate(bank, logical_row, self.time_ns)
        self.mitigation.on_activate(self, bank, logical_row, self.time_ns)
        self._service_refresh()

    def refresh_neighbors(self, bank: int, logical_row: int, distance: int = 1) -> int:
        """Refresh the rows adjacent to an aggressor (mitigation request).

        Returns the number of rows refreshed.  Costs tRC each and is
        charged as refresh energy.
        """
        remapper = self.module.remapper
        if self.spd_adjacency:
            victims = remapper.logical_neighbors_of_logical(logical_row, distance)
        else:
            victims = remapper.naive_neighbors(logical_row, distance)
        for victim in victims:
            flips = self.module.refresh_row(bank, victim, self.time_ns)
            self._note_flips(bank, victim, flips)
            self.time_ns += self.module.timing.tRC
            self.energy.record("refresh_row")
            self.stats.mitigation_refreshes += 1
        if telem.metrics_on:
            telem.counter("ctrl_mitigation_refreshes_total").inc(len(victims))
        if telem.trace_on:
            telem.trace("mitigation_refresh", t=self.time_ns, bank=bank,
                        aggressor=logical_row, victims=len(victims))
        return len(victims)

    def _note_flips(self, bank: int, row: int, flips) -> None:
        if len(flips):
            self.stats.flips_observed += len(flips)
            self.stats.flip_events.append((bank, row, len(flips), self.time_ns))
            if telem.metrics_on:
                telem.counter("ctrl_flips_observed_total").inc(len(flips))

    def _service_refresh(self) -> None:
        engine = self.refresh_engine
        while engine.due(self.time_ns):
            before = engine.stats.flips_caught_late
            engine.tick(self.time_ns)
            caught = engine.stats.flips_caught_late - before
            if caught:
                self.stats.flips_observed += caught
            self.time_ns += self.module.timing.tRFC
            self.energy.record("refresh_row", count=engine.rows_per_ref * self.module.geometry.banks)

    # ------------------------------------------------------------------
    # Bulk drivers
    # ------------------------------------------------------------------
    def run_activation_pattern(self, bank: int, rows: Sequence[int], iterations: int) -> None:
        """Interleave ``iterations`` rounds of activations over ``rows``.

        This is the faithful (per-command) path: every activation passes
        through timing, refresh, perf counters, and the mitigation hook.
        The whole pattern is one profiling span — the per-command loop
        stays span-free so profiling never distorts what it measures.
        """
        with telem.span("ctrl.activation_pattern"):
            for _ in range(iterations):
                for row in rows:
                    self.activate(bank, row)

    def run_trace(self, trace: Iterable) -> None:
        """Replay (bank, row, is_write) tuples through the full command path."""
        with telem.span("ctrl.run_trace"):
            for bank, row, is_write in trace:
                if is_write:
                    self.write(bank, row, self.module.read_row(bank, row, self.time_ns))
                else:
                    self.read(bank, row)

    # ------------------------------------------------------------------
    # End-of-run accounting
    # ------------------------------------------------------------------
    def finish(self) -> int:
        """Materialize pending flips everywhere; return total module flips."""
        with telem.span("ctrl.finish"):
            self.perf.flush(self.time_ns)
            self.module.settle(self.time_ns)
            return self.module.total_flips()

    def total_flips(self) -> int:
        """Flips materialized so far (call :meth:`finish` first for finality)."""
        return self.module.total_flips()
