"""FR-FCFS request scheduling (First-Ready, First-Come-First-Served).

The production scheduling policy the simple in-order
:class:`~repro.controller.scheduler.CommandScheduler` approximates
away: within a reorder window, requests that *hit the open row* of
their bank are served before older row-miss requests, maximizing
row-buffer locality.

Relevant to the paper in two ways: (i) mitigation overhead studies
should price refresh interruptions against a realistic scheduler, and
(ii) FR-FCFS is what makes hammering *possible* from user space — an
attacker's alternating-row pattern defeats the row buffer by
construction, so the scheduler cannot coalesce it.
"""

from __future__ import annotations

from typing import List, Optional

from repro.controller.energy import EnergyAccount
from repro.controller.request import MemRequest
from repro.controller.scheduler import T_BURST_NS, SchedulerStats, record_scheduler_metrics
from repro.dram.timing import TimingParams
from repro.telemetry import runtime as telem
from repro.utils.validation import check_positive


class FrFcfsScheduler:
    """FR-FCFS over one rank with a bounded reorder window.

    Args:
        banks: number of banks.
        timing: DDR timing parameters.
        window: max queued requests inspected when picking the next one.
        refresh_multiplier: REF rate scaling.
        energy: optional energy account.
    """

    def __init__(
        self,
        banks: int,
        timing: TimingParams,
        window: int = 16,
        refresh_multiplier: float = 1.0,
        energy: Optional[EnergyAccount] = None,
    ) -> None:
        check_positive("banks", banks)
        check_positive("window", window)
        check_positive("refresh_multiplier", refresh_multiplier)
        self.banks = banks
        self.timing = timing
        self.window = window
        self.energy = energy
        self.ref_interval_ns = timing.tREFI / refresh_multiplier
        self._next_ref_ns = self.ref_interval_ns
        self._bank_ready = [0.0] * banks
        self._open_row: List[Optional[int]] = [None] * banks
        self._bus_ready = 0.0
        self._now = 0.0

    def _refresh_stall(self, t: float, stats: SchedulerStats) -> float:
        while t >= self._next_ref_ns:
            ref_end = self._next_ref_ns + self.timing.tRFC
            if t < ref_end:
                stats.refresh_stall_ns += ref_end - t
                t = ref_end
            if self.energy is not None:
                self.energy.record("refresh_row", count=8)
            self._next_ref_ns += self.ref_interval_ns
        return t

    def _pick(self, pending: List[MemRequest]) -> int:
        """Index of the next request: oldest row-hit in the window, else
        the oldest request overall (FCFS fallback)."""
        horizon = min(self.window, len(pending))
        for i in range(horizon):
            req = pending[i]
            if req.arrival_ns <= self._now and self._open_row[req.bank] == req.row:
                return i
        return 0

    def _service(self, req: MemRequest, stats: SchedulerStats) -> None:
        timing = self.timing
        start = max(req.arrival_ns, self._bank_ready[req.bank], self._bus_ready)
        start = self._refresh_stall(start, stats)
        if self._open_row[req.bank] == req.row:
            stats.row_hits += 1
            data_at = start + timing.tCL
            self._bank_ready[req.bank] = start + T_BURST_NS
        else:
            stats.row_misses += 1
            data_at = start + timing.tRP + timing.tRCD + timing.tCL
            self._bank_ready[req.bank] = start + timing.tRP + timing.tRC
            self._open_row[req.bank] = req.row
            if self.energy is not None:
                self.energy.record("pre")
                self.energy.record("act")
        if self.energy is not None:
            self.energy.record("write" if req.is_write else "read")
        complete = data_at + T_BURST_NS
        self._bus_ready = data_at + T_BURST_NS
        self._now = max(self._now, complete)
        req.completed_ns = complete
        stats.requests += 1
        stats.total_latency_ns += complete - req.arrival_ns
        stats.latencies.append(complete - req.arrival_ns)
        stats.finish_ns = max(stats.finish_ns, complete)

    def execute(self, requests: List[MemRequest]) -> SchedulerStats:
        """Schedule all requests (sorted by arrival); returns statistics."""
        with telem.span("sched.execute", policy="frfcfs"):
            return self._execute_body(requests)

    def _execute_body(self, requests: List[MemRequest]) -> SchedulerStats:
        stats = SchedulerStats()
        pending = sorted(requests)
        for req in pending:
            if not 0 <= req.bank < self.banks:
                raise IndexError(f"bank {req.bank} out of range")
        while pending:
            if pending[0].arrival_ns > self._now:
                self._now = pending[0].arrival_ns
            if len(pending) > stats.queue_depth_peak:
                stats.queue_depth_peak = len(pending)
            index = self._pick(pending)
            self._service(pending.pop(index), stats)
        if telem.metrics_on:
            record_scheduler_metrics(stats, policy="frfcfs")
        return stats
