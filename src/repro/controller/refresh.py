"""The auto-refresh engine.

Issues REF operations every ``tREFI / multiplier`` nanoseconds; each
REF refreshes the next round-robin chunk of physical rows in every
bank, so that all rows are refreshed once per ``tREFW / multiplier``.
The ``multiplier`` is the knob behind the industry's immediate
RowHammer mitigation (BIOS patches raising the refresh rate), whose
cost/effectiveness curve bench C3 regenerates.

The engine also supports RAIDR-style **multi-rate refresh**: an
optional per-row bin assignment where a row in bin ``b`` is refreshed
only on every ``2^b``-th pass.  That saves refresh energy — and, as
the security-interaction experiment shows, quietly multiplies the
RowHammer activation budget against rows in slow bins, the very
"new vulnerabilities opened by the solution" risk §III-A1 warns about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dram.module import DramModule
from repro.dram.timing import TimingParams
from repro.sanitizer import runtime as sanit
from repro.telemetry import runtime as telem
from repro.utils.validation import check_positive


@dataclass
class RefreshStats:
    """Counters for refresh activity."""

    ref_commands: int = 0
    rows_refreshed: int = 0
    flips_caught_late: int = 0  # flips already present when refresh arrived


class RefreshEngine:
    """Round-robin auto-refresh over a module's physical rows.

    Args:
        module: the device being refreshed.
        multiplier: refresh-rate multiplier (1.0 = nominal 64 ms window).
    """

    def __init__(
        self,
        module: DramModule,
        multiplier: float = 1.0,
        row_bins: Optional[np.ndarray] = None,
    ) -> None:
        check_positive("multiplier", multiplier)
        self.module = module
        self.multiplier = multiplier
        timing: TimingParams = module.timing
        self.interval_ns = timing.tREFI / multiplier
        commands_per_window = max(1, timing.refresh_commands_per_window)
        rows = module.geometry.rows
        self.rows_per_ref = max(1, rows // commands_per_window)
        self.next_ref_ns = self.interval_ns
        self._cursor = 0
        self.stats = RefreshStats()
        if row_bins is not None:
            row_bins = np.asarray(row_bins, dtype=np.int64)
            if row_bins.shape != (rows,):
                raise ValueError(f"row_bins must have shape ({rows},)")
            if row_bins.min() < 0:
                raise ValueError("row bins must be >= 0")
        self.row_bins = row_bins
        self._pass_index = 0

    @property
    def effective_window_ns(self) -> float:
        """Time for one full pass over all rows."""
        rows = self.module.geometry.rows
        refs_needed = (rows + self.rows_per_ref - 1) // self.rows_per_ref
        return refs_needed * self.interval_ns

    def due(self, time_ns: float) -> bool:
        """Whether a REF is due at ``time_ns``."""
        return time_ns >= self.next_ref_ns

    def tick(self, time_ns: float) -> int:
        """Issue all REF commands due by ``time_ns``; return rows refreshed."""
        if sanit.sanitize_on:
            sanit.check("dram.refresh", self)
        refreshed = 0
        with telem.span("ctrl.refresh_tick"):
            while self.due(time_ns):
                refreshed += self._issue_ref(self.next_ref_ns)
                self.next_ref_ns += self.interval_ns
        return refreshed

    def _issue_ref(self, time_ns: float) -> int:
        rows = self.module.geometry.rows
        self.stats.ref_commands += 1
        if telem.metrics_on:
            telem.counter("dram_ref_commands_total").inc()
        rows_due = []
        for offset in range(self.rows_per_ref):
            row = (self._cursor + offset) % rows
            if self.row_bins is not None:
                # A row in bin b participates in every 2^b-th pass only.
                period = 1 << int(self.row_bins[row])
                if self._pass_index % period:
                    continue
            rows_due.append(row)
        count = 0
        if rows_due:
            # Banks are independent, so each bank takes its whole chunk
            # in one batched call (the columnar engine materializes the
            # chunk as one pass; the reference engine loops per row).
            for bank in range(self.module.geometry.banks):
                flips = self.module.refresh_physical_rows(bank, rows_due, time_ns)
                self.stats.flips_caught_late += flips
                count += len(rows_due)
        self._cursor = (self._cursor + self.rows_per_ref) % rows
        if self._cursor < self.rows_per_ref:
            self._pass_index += 1
        self.stats.rows_refreshed += count
        return count

    def refresh_ops_per_second(self) -> float:
        """Row-refresh operations per wall-clock second."""
        rows_per_ns = self.rows_per_ref * self.module.geometry.banks / self.interval_ns
        return rows_per_ns * 1e9

    def bandwidth_overhead_fraction(self, tRFC_ns: float = None) -> float:
        """Fraction of time the rank is blocked by REF commands."""
        if tRFC_ns is None:
            tRFC_ns = self.module.timing.tRFC
        return tRFC_ns / self.interval_ns
