"""Memory requests as seen by the controller."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(order=True)
class MemRequest:
    """One row-granular memory request.

    Requests are ordered by arrival time so traces can be merged.

    Attributes:
        arrival_ns: arrival time at the controller.
        bank: target bank.
        row: target logical row.
        is_write: write vs read.
        completed_ns: set by the scheduler on completion.
    """

    arrival_ns: float
    bank: int = field(compare=False)
    row: int = field(compare=False)
    is_write: bool = field(default=False, compare=False)
    completed_ns: float = field(default=-1.0, compare=False)

    @property
    def latency_ns(self) -> float:
        """Completion latency; raises if not yet scheduled."""
        if self.completed_ns < 0:
            raise ValueError("request has not completed")
        return self.completed_ns - self.arrival_ns
