"""Memory-controller substrate: scheduling, refresh, energy, counters."""

from repro.controller.controller import ControllerStats, MemoryController
from repro.controller.energy import EnergyAccount, EnergyParams
from repro.controller.frfcfs import FrFcfsScheduler
from repro.controller.hooks import MitigationHook, NullMitigation
from repro.controller.perfcounters import PerfCounters, WindowSample
from repro.controller.refresh import RefreshEngine, RefreshStats
from repro.controller.request import MemRequest
from repro.controller.scheduler import T_BURST_NS, CommandScheduler, SchedulerStats

__all__ = [
    "ControllerStats",
    "MemoryController",
    "FrFcfsScheduler",
    "EnergyAccount",
    "EnergyParams",
    "MitigationHook",
    "NullMitigation",
    "PerfCounters",
    "WindowSample",
    "RefreshEngine",
    "RefreshStats",
    "MemRequest",
    "T_BURST_NS",
    "CommandScheduler",
    "SchedulerStats",
]
