"""SoftMC-style programmable DRAM testing (the paper's footnote-1 infrastructure)."""

from repro.softmc.interpreter import ExecutionResult, SoftMcInterpreter
from repro.softmc.program import (
    Instruction,
    Opcode,
    DramProgram,
    hammer_program,
    retention_program,
)

__all__ = [
    "ExecutionResult",
    "SoftMcInterpreter",
    "Instruction",
    "Opcode",
    "DramProgram",
    "hammer_program",
    "retention_program",
]
