"""SoftMC-style DRAM test programs.

The paper's footnote 1 credits an FPGA-based experimental DRAM testing
infrastructure — released as SoftMC (HPCA 2017) — for enabling the
RowHammer and retention studies.  SoftMC's key idea is a tiny
instruction set for composing DDR command sequences with explicit
timing, freeing experiments from the memory controller's policies.

This module reproduces that programming model: a
:class:`DramProgram` is a list of instructions (ACT/PRE/RD/WR/REF/WAIT
and a counted LOOP), built through a fluent API and executed by
:class:`~repro.softmc.interpreter.SoftMcInterpreter` against a
simulated module.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.utils.validation import check_positive


class Opcode(enum.Enum):
    """SoftMC instruction opcodes."""

    ACT = "act"
    PRE = "pre"
    RD = "rd"
    WR = "wr"
    REF = "ref"
    WAIT = "wait"
    LOOP = "loop"
    END = "end"


@dataclass(frozen=True)
class Instruction:
    """One SoftMC instruction.

    Attributes:
        opcode: the operation.
        bank: target bank (ACT/PRE/RD/WR).
        row: target row (ACT/RD/WR).
        ns: wait duration (WAIT).
        count: iteration count (LOOP).
        pattern: data pattern name (WR).
    """

    opcode: Opcode
    bank: int = 0
    row: int = 0
    ns: float = 0.0
    count: int = 0
    pattern: Optional[str] = None


class DramProgram:
    """A composable SoftMC command program.

    Example::

        program = (DramProgram("double-sided")
                   .loop(100_000)
                   .act(0, 99).pre(0)
                   .act(0, 101).pre(0)
                   .end_loop())
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.instructions: List[Instruction] = []
        self._open_loops = 0

    # ------------------------------------------------------------------
    # Builder API
    # ------------------------------------------------------------------
    def act(self, bank: int, row: int) -> "DramProgram":
        """Activate a row."""
        self.instructions.append(Instruction(Opcode.ACT, bank=bank, row=row))
        return self

    def pre(self, bank: int) -> "DramProgram":
        """Precharge a bank."""
        self.instructions.append(Instruction(Opcode.PRE, bank=bank))
        return self

    def rd(self, bank: int, row: int) -> "DramProgram":
        """Activate-and-read a row (captures data into the read buffer)."""
        self.instructions.append(Instruction(Opcode.RD, bank=bank, row=row))
        return self

    def wr(self, bank: int, row: int, pattern: str = "solid1") -> "DramProgram":
        """Activate-and-write a named data pattern into a row."""
        self.instructions.append(Instruction(Opcode.WR, bank=bank, row=row, pattern=pattern))
        return self

    def ref(self) -> "DramProgram":
        """Issue one auto-refresh command."""
        self.instructions.append(Instruction(Opcode.REF))
        return self

    def wait(self, ns: float) -> "DramProgram":
        """Idle for ``ns`` nanoseconds (retention testing)."""
        check_positive("ns", ns)
        self.instructions.append(Instruction(Opcode.WAIT, ns=ns))
        return self

    def loop(self, count: int) -> "DramProgram":
        """Open a counted loop (closed by :meth:`end_loop`)."""
        check_positive("count", count)
        self.instructions.append(Instruction(Opcode.LOOP, count=count))
        self._open_loops += 1
        return self

    def end_loop(self) -> "DramProgram":
        """Close the innermost loop."""
        if self._open_loops == 0:
            raise ValueError("end_loop without a matching loop")
        self.instructions.append(Instruction(Opcode.END))
        self._open_loops -= 1
        return self

    def validate(self) -> None:
        """Raise if loops are unbalanced."""
        depth = 0
        for ins in self.instructions:
            if ins.opcode == Opcode.LOOP:
                depth += 1
            elif ins.opcode == Opcode.END:
                depth -= 1
                if depth < 0:
                    raise ValueError("END without matching LOOP")
        if depth != 0:
            raise ValueError(f"{depth} unclosed LOOP(s)")

    def __len__(self) -> int:
        return len(self.instructions)


# ----------------------------------------------------------------------
# Canned experiment programs (the SoftMC paper's two showcase studies)
# ----------------------------------------------------------------------
def hammer_program(
    bank: int,
    aggressors: Sequence[int],
    iterations: int,
    victims_to_init: Sequence[int] = (),
    pattern: str = "rowstripe",
) -> DramProgram:
    """The RowHammer test: init victims, hammer aggressors, read back."""
    program = DramProgram("hammer")
    for victim in victims_to_init:
        program.wr(bank, victim, pattern)
    program.loop(iterations)
    for aggressor in aggressors:
        program.act(bank, aggressor).pre(bank)
    program.end_loop()
    for victim in victims_to_init:
        program.rd(bank, victim)
    return program


def retention_program(
    bank: int,
    rows: Sequence[int],
    wait_ns: float,
    pattern: str = "solid1",
) -> DramProgram:
    """The retention test: write, disable refresh (wait), read back."""
    program = DramProgram("retention")
    for row in rows:
        program.wr(bank, row, pattern)
    program.wait(wait_ns)
    for row in rows:
        program.rd(bank, row)
    return program
