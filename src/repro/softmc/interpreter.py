"""The SoftMC interpreter: run test programs against a simulated module.

Unlike the :class:`~repro.controller.controller.MemoryController`, the
interpreter gives the experimenter raw command control: auto-refresh
only happens when the program says ``REF``, exactly as the FPGA
infrastructure bypasses the host controller.  This is what makes
refresh-paused retention tests and maximum-rate hammering expressible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.dram.datapatterns import pattern_bits
from repro.dram.module import DramModule
from repro.sanitizer import runtime as sanit
from repro.softmc.program import Instruction, Opcode, DramProgram


@dataclass
class ExecutionResult:
    """Outcome of one program run.

    Attributes:
        cycles_ns: simulated time consumed.
        reads: captured read data, in program order, as
            ((bank, row), bits) pairs.
        mismatches: for rows previously written by this program, the
            flipped bit indices observed at read-back.
        commands: count of each opcode executed.
    """

    cycles_ns: float = 0.0
    reads: List[Tuple[Tuple[int, int], np.ndarray]] = field(default_factory=list)
    mismatches: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)
    commands: Dict[str, int] = field(default_factory=dict)

    @property
    def total_flips(self) -> int:
        return sum(len(bits) for bits in self.mismatches.values())


class SoftMcInterpreter:
    """Executes :class:`DramProgram` instances on a module.

    Args:
        module: the device under test.
        honor_timing: advance simulated time per command using the
            module's timing parameters (tRC per ACT+PRE, tRFC per REF).
        retention_params: optional
            :class:`~repro.retention.params.RetentionParams`; when set,
            a ``WAIT`` decays the rows this program has written — cells
            whose (deterministic per-cell) retention time is shorter
            than the accumulated unrefreshed wait lose their charge.
            This is what makes the canned retention test program
            end-to-end meaningful.
    """

    def __init__(self, module: DramModule, honor_timing: bool = True, retention_params=None) -> None:
        self.module = module
        self.honor_timing = honor_timing
        self.retention_params = retention_params
        self._refresh_cursor = 0
        self._unrefreshed_wait_ns: Dict[Tuple[int, int], float] = {}

    def run(self, program: DramProgram) -> ExecutionResult:
        """Execute ``program`` and return its results."""
        program.validate()
        result = ExecutionResult()
        written: Dict[Tuple[int, int], np.ndarray] = {}
        self._execute(program.instructions, 0, len(program.instructions), result, written)
        # Evaluate mismatches for every row the program wrote then read.
        for (bank, row), bits in result.reads:
            expected = written.get((bank, row))
            if expected is None:
                continue
            changed = np.nonzero(bits != expected)[0]
            if len(changed):
                result.mismatches[(bank, row)] = [int(b) for b in changed]
        return result

    # ------------------------------------------------------------------
    def _execute(self, instructions, start, stop, result, written) -> None:
        timing = self.module.timing
        pc = start
        while pc < stop:
            ins: Instruction = instructions[pc]
            result.commands[ins.opcode.value] = result.commands.get(ins.opcode.value, 0) + 1
            if ins.opcode == Opcode.ACT:
                self.module.activate(ins.bank, ins.row, result.cycles_ns)
                if self.honor_timing:
                    result.cycles_ns += timing.tRAS
            elif ins.opcode == Opcode.PRE:
                self.module.precharge(ins.bank)
                if self.honor_timing:
                    result.cycles_ns += timing.tRP
            elif ins.opcode == Opcode.RD:
                bits = self.module.read_row(ins.bank, ins.row, result.cycles_ns)
                result.reads.append(((ins.bank, ins.row), bits))
                if self.honor_timing:
                    result.cycles_ns += timing.tRC
            elif ins.opcode == Opcode.WR:
                bits = pattern_bits(ins.pattern or "solid1", ins.row, self.module.geometry.row_bytes)
                self.module.write_row(ins.bank, ins.row, bits, result.cycles_ns)
                written[(ins.bank, ins.row)] = bits.copy()
                if self.honor_timing:
                    result.cycles_ns += timing.tRC
            elif ins.opcode == Opcode.REF:
                self._issue_ref(result)
                self._unrefreshed_wait_ns.clear()
            elif ins.opcode == Opcode.WAIT:
                result.cycles_ns += ins.ns
                if self.retention_params is not None:
                    self._apply_retention_decay(ins.ns, written)
            elif ins.opcode == Opcode.LOOP:
                body_start = pc + 1
                body_stop = self._matching_end(instructions, pc, stop)
                for _ in range(ins.count):
                    self._execute(instructions, body_start, body_stop, result, written)
                pc = body_stop  # skip to END
            elif ins.opcode == Opcode.END:
                pass
            pc += 1

    def _issue_ref(self, result) -> None:
        """One REF refreshes the next round-robin chunk of rows."""
        geometry = self.module.geometry
        timing = self.module.timing
        rows_per_ref = max(1, geometry.rows // max(1, timing.refresh_commands_per_window))
        for offset in range(rows_per_ref):
            row = (self._refresh_cursor + offset) % geometry.rows
            for bank in range(geometry.banks):
                self.module.refresh_physical_row(bank, row, result.cycles_ns)
        self._refresh_cursor = (self._refresh_cursor + rows_per_ref) % geometry.rows
        if self.honor_timing:
            result.cycles_ns += timing.tRFC

    def _apply_retention_decay(self, wait_ns: float, written: Dict) -> None:
        """Flip charged cells whose retention is shorter than the total
        unrefreshed wait each written row has accumulated.

        Per-cell retention times are a deterministic function of
        (module seed, bank, row), so repeated runs observe the same
        failing cells — matching real retention-test behavior.
        """
        from repro.retention.params import RetentionParams
        from repro.utils.rng import derive_rng

        params: RetentionParams = self.retention_params
        for (bank, row) in list(written):
            total = self._unrefreshed_wait_ns.get((bank, row), 0.0) + wait_ns
            self._unrefreshed_wait_ns[(bank, row)] = total
            total_s = total * 1e-9
            rng = derive_rng(self.module.seed, "softmc-retention", bank, row)
            row_bits = self.module.geometry.row_bits
            times = np.exp(rng.normal(np.log(params.median_s), params.sigma, size=row_bits))
            tail = rng.random(row_bits) < params.tail_fraction
            n_tail = int(tail.sum())
            if n_tail:
                times[tail] = np.exp(
                    rng.uniform(np.log(params.tail_min_s), np.log(params.tail_max_s), size=n_tail)
                )
            failing = times < total_s
            if not failing.any():
                continue
            # Charge loss: true cells decay to 0, anti cells to 1.  Model
            # polarity with a deterministic per-row draw.
            anti = rng.random(row_bits) < 0.5
            physical = self.module.remapper.to_physical(row)
            dev_bank = self.module.bank(bank)
            bits = dev_bank.row_bits(physical)
            bits[failing & ~anti] = 0
            bits[failing & anti] = 1
            if sanit.sanitize_on:
                # Retention decay is a legitimate in-place mutation:
                # refresh the row's stored-data shadow digest.
                sanit.note("dram.bank", dev_bank, row=physical)

    @staticmethod
    def _matching_end(instructions, loop_pc, stop) -> int:
        depth = 0
        for pc in range(loop_pc + 1, stop):
            if instructions[pc].opcode == Opcode.LOOP:
                depth += 1
            elif instructions[pc].opcode == Opcode.END:
                if depth == 0:
                    return pc
                depth -= 1
        raise ValueError("LOOP without matching END")
