"""Single-symbol-correcting Reed-Solomon-style code over GF(256).

This is the "stronger ECC" arm of the paper's §II-C discussion: a
chipkill-class symbol code that corrects *any* number of bit flips
confined to one 8-bit symbol (e.g., one DRAM device's burst), at the
cost of two parity symbols per word.  It corrects strictly more
RowHammer words than SECDED — multi-bit flips inside one byte — while
still failing on flips spread across two or more symbols, where it
detects (or, rarely, miscorrects) the error.

Construction: the codeword ``c_0..c_{n-1}`` satisfies the two parity
checks ``sum_i c_i = 0`` and ``sum_i c_i * alpha^i = 0``.  A single
corrupted symbol ``j`` with error value ``e`` yields syndromes
``S1 = e`` and ``S2 = e * alpha^j``, so ``j = log(S2 / S1)``.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import DecodeResult, DecodeStatus, EccCode
from repro.ecc.gf256 import LOG, gf_div, gf_mul, gf_pow
from repro.utils.validation import check_int


class SingleSymbolCorrectingCode(EccCode):
    """Symbol code with ``data_symbols`` data bytes + 2 parity bytes.

    Args:
        data_symbols: data bytes per codeword; 8 protects a 64-bit word.
    """

    def __init__(self, data_symbols: int = 8) -> None:
        check_int("data_symbols", data_symbols)
        if not 1 <= data_symbols <= 253:
            raise ValueError("data_symbols must be in [1, 253]")
        self.data_symbols = data_symbols
        self.n_symbols = data_symbols + 2
        self.data_bits = data_symbols * 8
        self.code_bits = self.n_symbols * 8

    # ------------------------------------------------------------------
    # Symbol <-> bit packing (LSB-first within each byte)
    # ------------------------------------------------------------------
    @staticmethod
    def _bits_to_symbols(bits: np.ndarray) -> np.ndarray:
        return np.packbits(bits.astype(np.uint8), bitorder="little").astype(np.int64)

    @staticmethod
    def _symbols_to_bits(symbols: np.ndarray) -> np.ndarray:
        return np.unpackbits(symbols.astype(np.uint8), bitorder="little")

    # ------------------------------------------------------------------
    # Code
    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode data bits into a codeword with two parity symbols."""
        self.check_data(data)
        d = self._bits_to_symbols(data)
        k = self.data_symbols
        s = 0
        t = 0
        for i, sym in enumerate(d):
            s ^= int(sym)
            t ^= gf_mul(int(sym), gf_pow(2, i))
        # Solve p0 + p1 = s ; p0*a^k + p1*a^(k+1) = t  (a = 2, the generator).
        ak = gf_pow(2, k)
        denom = ak ^ gf_pow(2, k + 1)  # a^k * (1 + a)
        p1 = gf_div(t ^ gf_mul(s, ak), denom)
        p0 = s ^ p1
        symbols = np.concatenate([d, [p0, p1]])
        return self._symbols_to_bits(symbols)

    def _syndromes(self, symbols: np.ndarray) -> tuple:
        s1 = 0
        s2 = 0
        for i, sym in enumerate(symbols):
            s1 ^= int(sym)
            s2 ^= gf_mul(int(sym), gf_pow(2, i))
        return s1, s2

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode, correcting any error confined to one symbol."""
        self.check_codeword(codeword)
        symbols = self._bits_to_symbols(codeword)
        s1, s2 = self._syndromes(symbols)
        if s1 == 0 and s2 == 0:
            return DecodeResult(
                data=self._symbols_to_bits(symbols[: self.data_symbols]),
                status=DecodeStatus.CLEAN,
            )
        if s1 == 0 or s2 == 0:
            # Inconsistent with any single-symbol error.
            return DecodeResult(
                data=self._symbols_to_bits(symbols[: self.data_symbols]),
                status=DecodeStatus.DETECTED_UNCORRECTABLE,
            )
        position = int(LOG[gf_div(s2, s1)])
        if position >= self.n_symbols:
            return DecodeResult(
                data=self._symbols_to_bits(symbols[: self.data_symbols]),
                status=DecodeStatus.DETECTED_UNCORRECTABLE,
            )
        corrected = symbols.copy()
        corrected[position] ^= s1
        bit_base = position * 8
        flipped_bits = tuple(bit_base + b for b in range(8) if (s1 >> b) & 1)
        return DecodeResult(
            data=self._symbols_to_bits(corrected[: self.data_symbols]),
            status=DecodeStatus.CORRECTED,
            corrected_positions=flipped_bits,
        )


#: Chipkill-style configuration protecting a 64-bit word (80 stored bits).
SYMBOL_72_64 = SingleSymbolCorrectingCode(8)
