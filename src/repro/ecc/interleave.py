"""Bit interleaving: spreading clustered flips across codewords.

A standard memory-design countermeasure to spatially clustered errors:
store codewords *bit-interleaved*, so physically adjacent cells belong
to different codewords.  A RowHammer cluster that would put 2-3 flips
into one 64-bit word then lands one flip in each of several words —
back inside SECDED's correction envelope.

This is the constructive counterpart of the §II-C ECC discussion: the
bench shows plain SECDED failing against clustered flips while
interleaved SECDED survives them (at the cost of wider access
granularity, noted in the report).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.ecc.accounting import EccEvaluation, evaluate_code_against_histogram, flips_per_word
from repro.ecc.base import EccCode
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive


def interleave_position(physical_bit: int, degree: int, word_bits: int = 64) -> tuple:
    """Map a physical bit to (codeword index, bit-within-codeword).

    With interleaving ``degree`` D, physical bits rotate across D
    codewords: bit ``i`` of a D*word_bits group belongs to codeword
    ``i % D`` at offset ``i // D``.
    """
    check_positive("degree", degree)
    group = physical_bit // (degree * word_bits)
    offset = physical_bit % (degree * word_bits)
    word_in_group = offset % degree
    bit_in_word = offset // degree
    return group * degree + word_in_group, bit_in_word


def interleaved_flips_per_word(
    flip_bits: Iterable[int], degree: int, word_bits: int = 64
) -> Dict[int, int]:
    """Flips-per-codeword histogram under bit interleaving."""
    from collections import Counter

    words: Counter = Counter()
    for bit in flip_bits:
        word, _offset = interleave_position(int(bit), degree, word_bits)
        words[word] += 1
    histogram: Counter = Counter(words.values())
    return dict(sorted(histogram.items()))


def compare_interleaving(
    code: EccCode,
    flip_bits: List[int],
    degrees: Iterable[int] = (1, 2, 4, 8),
    word_bits: int = 64,
    seed: int = 0,
) -> Dict[int, EccEvaluation]:
    """Score a code against the same flips at several interleave degrees.

    Degree 1 is the plain layout (:func:`flips_per_word`).
    """
    results: Dict[int, EccEvaluation] = {}
    for degree in degrees:
        if degree == 1:
            histogram = flips_per_word(flip_bits, word_bits)
        else:
            histogram = interleaved_flips_per_word(flip_bits, degree, word_bits)
        results[degree] = evaluate_code_against_histogram(
            code, histogram, derive_rng(seed, "interleave", degree)
        )
    return results
