"""Error-correcting codes and their evaluation against disturbance flips."""

from repro.ecc.accounting import EccEvaluation, evaluate_code_against_histogram, flips_per_word
from repro.ecc.base import DecodeResult, DecodeStatus, EccCode, classify_against_truth
from repro.ecc.hamming import SECDED_72_64, HammingSecded
from repro.ecc.injection import campaign, inject_clustered, inject_uniform, inject_weak_cell_map
from repro.ecc.interleave import compare_interleaving, interleave_position, interleaved_flips_per_word
from repro.ecc.parity import ParityCode
from repro.ecc.symbol import SYMBOL_72_64, SingleSymbolCorrectingCode

__all__ = [
    "EccEvaluation",
    "evaluate_code_against_histogram",
    "flips_per_word",
    "DecodeResult",
    "DecodeStatus",
    "EccCode",
    "classify_against_truth",
    "SECDED_72_64",
    "campaign",
    "compare_interleaving",
    "interleave_position",
    "interleaved_flips_per_word",
    "inject_clustered",
    "inject_uniform",
    "inject_weak_cell_map",
    "HammingSecded",
    "ParityCode",
    "SYMBOL_72_64",
    "SingleSymbolCorrectingCode",
]
