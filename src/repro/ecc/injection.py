"""Error-injection campaigns: why RowHammer defeats ECC sized for strikes.

DIMM SECDED was provisioned against *independent* single-bit upsets
(particle strikes, marginal cells).  RowHammer errors are different in
exactly the way that matters: flips cluster — several weak cells can
share a 64-bit word, and double-sided hammering fires them together.
These injectors make that comparison quantitative: the same raw
bit-error budget is injected with different spatial processes and
scored against a code.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.ecc.accounting import EccEvaluation, evaluate_code_against_histogram, flips_per_word
from repro.ecc.base import EccCode
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive, check_probability


def inject_uniform(n_flips: int, total_bits: int, rng: np.random.Generator) -> List[int]:
    """Independent uniform flips (the particle-strike model)."""
    check_positive("total_bits", total_bits)
    if n_flips == 0:
        return []
    return sorted(int(b) for b in rng.choice(total_bits, size=min(n_flips, total_bits), replace=False))


def inject_clustered(
    n_flips: int,
    total_bits: int,
    rng: np.random.Generator,
    cluster_size_mean: float = 2.2,
    cluster_span_bits: int = 64,
) -> List[int]:
    """Spatially clustered flips (the RowHammer model).

    Flips arrive in clusters of geometric size landing within one
    ``cluster_span_bits`` window — weak cells co-located in a word.
    """
    check_positive("total_bits", total_bits)
    check_positive("cluster_span_bits", cluster_span_bits)
    flips: set = set()
    while len(flips) < n_flips:
        base = int(rng.integers(0, max(1, total_bits - cluster_span_bits)))
        size = 1 + rng.geometric(1.0 / cluster_size_mean)
        offsets = rng.choice(cluster_span_bits, size=min(size, cluster_span_bits), replace=False)
        for off in offsets:
            flips.add(base + int(off))
            if len(flips) >= n_flips:
                break
    return sorted(flips)


def inject_weak_cell_map(
    total_bits: int,
    weak_density: float,
    firing_probability: float,
    rng: np.random.Generator,
) -> List[int]:
    """Flips drawn from a fixed weak-cell map (repeatable locations).

    The fault-model-faithful process: a static sparse set of weak bits,
    of which a hammering episode fires a fraction.
    """
    check_probability("weak_density", weak_density)
    check_probability("firing_probability", firing_probability)
    n_weak = rng.binomial(total_bits, weak_density)
    if n_weak == 0:
        return []
    weak = rng.choice(total_bits, size=n_weak, replace=False)
    fired = weak[rng.random(n_weak) < firing_probability]
    return sorted(int(b) for b in fired)


def campaign(
    code: EccCode,
    n_flips: int,
    total_bits: int = 1 << 20,
    word_bits: int = 64,
    seed: int = 0,
) -> Dict[str, EccEvaluation]:
    """Score ``code`` against the same flip budget under each process."""
    results: Dict[str, EccEvaluation] = {}
    for name, injector in (
        ("uniform", lambda rng: inject_uniform(n_flips, total_bits, rng)),
        ("clustered", lambda rng: inject_clustered(n_flips, total_bits, rng)),
    ):
        rng = derive_rng(seed, "inject", name)
        flips = injector(rng)
        histogram = flips_per_word(flips, word_bits)
        results[name] = evaluate_code_against_histogram(
            code, histogram, derive_rng(seed, "eval", name)
        )
    return results
