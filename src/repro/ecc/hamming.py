"""Extended Hamming SECDED code, built from first principles.

The (72, 64) instance is the industry-standard DIMM ECC the paper
references: **S**ingle **E**rror **C**orrect, **D**ouble **E**rror
**D**etect.  The construction is the classic one:

* codeword positions are numbered 1..n-1 with parity bits at the
  powers of two; position 0 holds the overall parity bit;
* the syndrome (XOR of the positions of flipped bits) points at a
  single error; the overall parity disambiguates single (parity
  mismatch) from double (parity match) errors.

Triple errors alias to a valid-looking single-error syndrome and are
silently *miscorrected* — exactly the failure mode that makes SECDED
insufficient against multi-bit RowHammer words.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import DecodeResult, DecodeStatus, EccCode
from repro.ecc.bitops import parity
from repro.utils.validation import check_int


class HammingSecded(EccCode):
    """Extended Hamming SECDED over ``data_bits`` data bits.

    Args:
        data_bits: data word width; 64 gives the standard (72, 64) code.
    """

    def __init__(self, data_bits: int = 64) -> None:
        check_int("data_bits", data_bits)
        if data_bits < 1:
            raise ValueError("data_bits must be >= 1")
        self.data_bits = data_bits
        self.n_parity = self._parity_bits_needed(data_bits)
        # +1 for the overall-parity bit at position 0.
        self.code_bits = 1 + self.n_parity + data_bits
        self._parity_positions = [1 << i for i in range(self.n_parity)]
        self._data_positions = [
            pos
            for pos in range(1, self.code_bits)
            if pos not in set(self._parity_positions)
        ]
        # Survives ``python -O``, unlike a bare assert: a miscounted
        # layout would silently scramble every encode after it.
        if len(self._data_positions) != data_bits:
            raise RuntimeError(
                f"SECDED layout error: {len(self._data_positions)} data "
                f"positions for {data_bits} data bits "
                f"(code_bits={self.code_bits}, n_parity={self.n_parity})"
            )

    @staticmethod
    def _parity_bits_needed(data_bits: int) -> int:
        r = 0
        # Hamming bound for a code of length data_bits + r (positions 1..n-1).
        while (1 << r) < data_bits + r + 1:
            r += 1
        return r

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode data bits into a SECDED codeword."""
        self.check_data(data)
        code = np.zeros(self.code_bits, dtype=np.uint8)
        code[self._data_positions] = data
        for i, ppos in enumerate(self._parity_positions):
            mask = [pos for pos in range(1, self.code_bits) if pos & (1 << i) and pos != ppos]
            code[ppos] = np.bitwise_xor.reduce(code[mask]) if mask else 0
        code[0] = parity(code[1:])
        return code

    def _syndrome(self, codeword: np.ndarray) -> int:
        syndrome = 0
        for pos in range(1, self.code_bits):
            if codeword[pos]:
                syndrome ^= pos
        return syndrome

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode, correcting single errors and flagging double errors."""
        self.check_codeword(codeword)
        work = codeword.copy()
        syndrome = self._syndrome(work)
        overall_ok = parity(work) == 0
        if syndrome == 0 and overall_ok:
            return DecodeResult(data=work[self._data_positions].copy(), status=DecodeStatus.CLEAN)
        if syndrome == 0 and not overall_ok:
            # The overall parity bit itself flipped.
            work[0] ^= 1
            return DecodeResult(
                data=work[self._data_positions].copy(),
                status=DecodeStatus.CORRECTED,
                corrected_positions=(0,),
            )
        if overall_ok:
            # Nonzero syndrome but even overall parity: an even number of
            # flips (>= 2) — detected, uncorrectable.
            return DecodeResult(
                data=work[self._data_positions].copy(),
                status=DecodeStatus.DETECTED_UNCORRECTABLE,
            )
        if syndrome < self.code_bits:
            work[syndrome] ^= 1
            return DecodeResult(
                data=work[self._data_positions].copy(),
                status=DecodeStatus.CORRECTED,
                corrected_positions=(syndrome,),
            )
        # Syndrome points outside the codeword: >= 3 flips, detectable here.
        return DecodeResult(
            data=work[self._data_positions].copy(),
            status=DecodeStatus.DETECTED_UNCORRECTABLE,
        )


#: The standard DIMM configuration: 64 data bits + 8 check bits.
SECDED_72_64 = HammingSecded(64)
