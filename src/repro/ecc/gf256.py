"""GF(2^8) arithmetic for the symbol-correcting code.

Uses the AES/Reed-Solomon-standard primitive polynomial
x^8 + x^4 + x^3 + x^2 + 1 (0x11D) and exp/log tables for O(1)
multiply/divide.
"""

from __future__ import annotations

import numpy as np

_PRIM = 0x11D

EXP = np.zeros(512, dtype=np.int64)
LOG = np.zeros(256, dtype=np.int64)


def _build_tables() -> None:
    x = 1
    for i in range(255):
        EXP[i] = x
        LOG[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIM
    for i in range(255, 512):
        EXP[i] = EXP[i - 255]


_build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return int(EXP[LOG[a] + LOG[b]])


def gf_div(a: int, b: int) -> int:
    """Divide in GF(256); raises on division by zero."""
    if b == 0:
        raise ZeroDivisionError("GF(256) division by zero")
    if a == 0:
        return 0
    return int(EXP[(LOG[a] - LOG[b]) % 255])


def gf_pow(a: int, n: int) -> int:
    """Raise ``a`` to the ``n``-th power in GF(256)."""
    if a == 0:
        return 0 if n else 1
    return int(EXP[(LOG[a] * n) % 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(256)."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(EXP[255 - LOG[a]])
