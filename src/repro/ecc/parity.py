"""Detect-only even-parity code (the weakest rung of the ECC ladder)."""

from __future__ import annotations

import numpy as np

from repro.ecc.base import DecodeResult, DecodeStatus, EccCode
from repro.ecc.bitops import parity
from repro.utils.validation import check_int


class ParityCode(EccCode):
    """Single even-parity bit over ``data_bits`` data bits.

    Detects any odd number of flips; corrects nothing; even flip
    counts pass silently (reported CLEAN, i.e. silent corruption).
    """

    def __init__(self, data_bits: int = 64) -> None:
        check_int("data_bits", data_bits)
        if data_bits < 1:
            raise ValueError("data_bits must be >= 1")
        self.data_bits = data_bits
        self.code_bits = data_bits + 1

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Append one even-parity bit."""
        self.check_data(data)
        return np.concatenate([data.astype(np.uint8), [parity(data)]])

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Report DETECTED_UNCORRECTABLE on parity mismatch, CLEAN otherwise."""
        self.check_codeword(codeword)
        data = codeword[: self.data_bits].copy()
        if parity(codeword) != 0:
            return DecodeResult(data=data, status=DecodeStatus.DETECTED_UNCORRECTABLE)
        return DecodeResult(data=data, status=DecodeStatus.CLEAN)
