"""Common ECC interface and decode outcome classification.

The paper's §II-C argument about ECC hinges on the *outcome classes*:
SECDED corrects single-bit flips, detects (but cannot correct) double
flips, and can silently miscorrect triple flips — so RowHammer words
with >= 2 flips defeat it.  Every code here reports which class a
decode fell into so the mitigation study can count them.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


class DecodeStatus(enum.Enum):
    """Classification of one codeword decode."""

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED_UNCORRECTABLE = "detected_uncorrectable"
    MISCORRECTED = "miscorrected"  # only observable with ground truth


@dataclass
class DecodeResult:
    """Outcome of decoding one codeword.

    Attributes:
        data: recovered data bits (LSB-first).
        status: outcome class as reported *by the decoder* (a decoder
            cannot itself distinguish MISCORRECTED from CORRECTED; use
            :func:`classify_against_truth` for ground-truth accounting).
        corrected_positions: codeword bit positions the decoder flipped.
    """

    data: np.ndarray
    status: DecodeStatus
    corrected_positions: tuple = ()


class EccCode(ABC):
    """Abstract block code over bit arrays."""

    #: number of data bits per codeword
    data_bits: int
    #: number of total bits per codeword
    code_bits: int

    @abstractmethod
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``data_bits`` data bits into ``code_bits`` codeword bits."""

    @abstractmethod
    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode a (possibly corrupted) codeword."""

    @property
    def overhead_fraction(self) -> float:
        """Storage overhead: redundant bits / data bits."""
        return (self.code_bits - self.data_bits) / self.data_bits

    def check_data(self, data: np.ndarray) -> None:
        """Validate data-word shape."""
        if data.shape != (self.data_bits,):
            raise ValueError(f"expected {self.data_bits} data bits, got shape {data.shape}")

    def check_codeword(self, codeword: np.ndarray) -> None:
        """Validate codeword shape."""
        if codeword.shape != (self.code_bits,):
            raise ValueError(f"expected {self.code_bits} code bits, got shape {codeword.shape}")


def classify_against_truth(result: DecodeResult, true_data: np.ndarray) -> DecodeStatus:
    """Reclassify a decode using ground truth (exposes miscorrections)."""
    if result.status == DecodeStatus.DETECTED_UNCORRECTABLE:
        return result.status
    if np.array_equal(result.data, true_data):
        return result.status
    return DecodeStatus.MISCORRECTED
