"""Bit-level helpers shared by the ECC implementations."""

from __future__ import annotations

import numpy as np


def int_to_bits(value: int, width: int) -> np.ndarray:
    """LSB-first bit array of ``value`` with ``width`` entries."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)


def bits_to_int(bits: np.ndarray) -> int:
    """Inverse of :func:`int_to_bits`."""
    value = 0
    for i, bit in enumerate(bits):
        if bit:
            value |= 1 << i
    return value


def parity(bits: np.ndarray) -> int:
    """Even parity (XOR reduction) of a bit array."""
    return int(np.bitwise_xor.reduce(bits.astype(np.uint8))) & 1


def flip_bits(bits: np.ndarray, positions) -> np.ndarray:
    """Return a copy of ``bits`` with the given positions inverted."""
    out = bits.copy()
    out[list(positions)] ^= 1
    return out


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Number of differing bit positions."""
    if a.shape != b.shape:
        raise ValueError("arrays must have equal shape")
    return int(np.count_nonzero(a != b))
