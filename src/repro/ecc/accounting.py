"""ECC effectiveness accounting against disturbance flip populations.

The paper's claim C4: simple SECDED "is not enough to prevent all
RowHammer errors, as some cache blocks experience two or more bit
flips".  These helpers turn a set of flipped row-bit positions into a
per-word flip-count histogram, and Monte-Carlo-evaluate a given code
against that histogram (flips land anywhere in the stored codeword,
so check bits can be hit too).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable

import numpy as np

from repro.ecc.base import DecodeStatus, EccCode, classify_against_truth
from repro.sanitizer import runtime as sanit
from repro.telemetry import physics as phys
from repro.telemetry import runtime as telem


def flips_per_word(flip_bits: Iterable[int], word_bits: int = 64) -> Dict[int, int]:
    """Histogram {flips_in_word: number_of_words} from flipped bit positions.

    Words are aligned ``word_bits`` windows of the row; words with zero
    flips are not reported.
    """
    if word_bits <= 0:
        raise ValueError("word_bits must be positive")
    words = Counter(int(bit) // word_bits for bit in flip_bits)
    histogram: Counter = Counter(words.values())
    return dict(sorted(histogram.items()))


@dataclass
class EccEvaluation:
    """Aggregated decode outcomes of a code against a flip population."""

    words_total: int = 0
    outcomes: Dict[DecodeStatus, int] = field(default_factory=dict)

    def add(self, status: DecodeStatus, count: int = 1) -> None:
        """Accumulate ``count`` words with the given outcome."""
        self.words_total += count
        self.outcomes[status] = self.outcomes.get(status, 0) + count
        if telem.metrics_on:
            telem.counter("ecc_words_total", status=status.value).inc(count)
        if phys.physics_on:
            # Per-word correct-vs-detect outcomes are high-volume, so
            # they stay audit counts rather than individual events.
            phys.get_collector().audit_count("ecc", status.value, count)

    @property
    def uncorrected_words(self) -> int:
        """Words whose data was not silently restored (detected or corrupted)."""
        return self.outcomes.get(DecodeStatus.DETECTED_UNCORRECTABLE, 0) + self.outcomes.get(
            DecodeStatus.MISCORRECTED, 0
        )

    @property
    def silent_corruptions(self) -> int:
        """Words returned as 'corrected' but actually wrong."""
        return self.outcomes.get(DecodeStatus.MISCORRECTED, 0)

    def rate(self, status: DecodeStatus) -> float:
        """Fraction of evaluated words with the given outcome."""
        if self.words_total == 0:
            return 0.0
        return self.outcomes.get(status, 0) / self.words_total


def evaluate_code_against_histogram(
    code: EccCode,
    flip_histogram: Dict[int, int],
    rng: np.random.Generator,
    trials_per_class: int = 200,
) -> EccEvaluation:
    """Monte-Carlo decode outcomes for words drawn from a flip histogram.

    For each (flips f -> word count c) entry, ``min(c, trials_per_class)``
    random codewords are corrupted with f random flips and decoded;
    outcomes are scaled back to ``c`` words.

    Args:
        code: the ECC under evaluation.
        flip_histogram: {flips_per_word: word_count}, e.g. from
            :func:`flips_per_word` (flip counts refer to data-word
            windows; flips are re-rolled over the full codeword, which
            is the standard stored-codeword assumption).
        rng: randomness source.
        trials_per_class: sampling cap per flip-count class.
    """
    if sanit.sanitize_on:
        sanit.check("ecc.codec", code)
    evaluation = EccEvaluation()
    with telem.span("ecc.evaluate", code=type(code).__name__):
        for flips, word_count in sorted(flip_histogram.items()):
            trials = min(word_count, trials_per_class)
            tally: Counter = Counter()
            for _ in range(trials):
                data = rng.integers(0, 2, size=code.data_bits).astype(np.uint8)
                codeword = code.encode(data)
                positions = rng.choice(code.code_bits, size=min(flips, code.code_bits), replace=False)
                corrupted = codeword.copy()
                corrupted[positions] ^= 1
                result = code.decode(corrupted)
                tally[classify_against_truth(result, data)] += 1
            for status, tally_count in tally.items():
                evaluation.add(status, count=round(tally_count * word_count / trials))
    if telem.trace_on:
        telem.trace("ecc_eval", code=type(code).__name__,
                    words=evaluation.words_total,
                    uncorrected=evaluation.uncorrected_words,
                    miscorrected=evaluation.silent_corruptions)
    return evaluation
