"""Plain-text figure rendering (log-scale scatter, bar series).

Keeps the benches and examples free of plotting dependencies while
still giving a visual read of the regenerated figures.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence, Tuple


def ascii_log_scatter(
    points: Iterable[Tuple[float, float, str]],
    x_buckets: Sequence[int],
    decades: Sequence[int],
) -> str:
    """Render (x, y, label) points on a log-y grid.

    Args:
        points: (x, y, one-char label) triples; y <= 0 points are dropped.
        x_buckets: integer x-axis buckets (e.g. years).
        decades: y-axis decades, e.g. ``range(7, -1, -1)``.
    """
    marks: Dict[Tuple[int, int], set] = {}
    for x, y, label in points:
        if y <= 0:
            continue
        decade = int(math.floor(math.log10(y)))
        decade = min(max(decade, min(decades)), max(decades))
        bucket = int(x)
        if bucket in x_buckets:
            marks.setdefault((decade, bucket), set()).add(label[:1])
    lines = []
    for decade in decades:
        cells = []
        for bucket in x_buckets:
            got = marks.get((decade, bucket), set())
            cells.append("".join(sorted(got)).ljust(4))
        lines.append(f"10^{decade} | " + " ".join(cells))
    lines.append("      +" + "-" * (len(x_buckets) * 5 + 2))
    lines.append("        " + " ".join(str(b)[-2:].ljust(4) for b in x_buckets))
    return "\n".join(lines)


def ascii_bars(values: Dict[str, float], width: int = 40, log: bool = False) -> str:
    """Horizontal bar chart of labeled values."""
    if not values:
        return "(empty)"
    import math as _math

    def transform(v: float) -> float:
        if not log:
            return v
        return _math.log10(v) if v > 0 else 0.0

    transformed = {k: transform(v) for k, v in values.items()}
    peak = max(transformed.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines = []
    for key, value in values.items():
        bar = "#" * max(0, int(round(width * transformed[key] / peak)))
        lines.append(f"{key.ljust(label_width)} | {bar} {value:.4g}")
    return "\n".join(lines)
