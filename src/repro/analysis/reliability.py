"""Reliability arithmetic: failure rates, AFR baselines, comparisons.

§II-C anchors PARA's guarantee against the reliability of "modern hard
disks today": the mechanism's induced-failure probability per year is
orders of magnitude below disk annualized failure rates (AFR).  The
constants here are the standard published ranges used for that
comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Typical enterprise hard-disk annualized failure rate range.
HARD_DISK_AFR_LOW = 0.005
HARD_DISK_AFR_HIGH = 0.09
#: A representative single value for headline comparisons.
HARD_DISK_AFR_TYPICAL = 0.02

#: Uncorrectable DRAM error rates observed in field studies (per
#: device-year, order of magnitude) — context for "how bad is bad".
FIELD_DRAM_UE_PER_DEVICE_YEAR = 1e-3


@dataclass(frozen=True)
class ReliabilityComparison:
    """A mitigation's failure rate versus the hard-disk baseline.

    Attributes:
        log10_failures_per_year: mechanism-induced failure rate (log10).
        log10_margin_vs_disk: decades of margin below the typical disk AFR
            (positive = safer than a disk).
    """

    log10_failures_per_year: float
    log10_margin_vs_disk: float

    @property
    def safer_than_disk(self) -> bool:
        return self.log10_margin_vs_disk > 0


def compare_to_disk(log10_failures_per_year: float) -> ReliabilityComparison:
    """Position a failure rate against the typical hard-disk AFR."""
    margin = math.log10(HARD_DISK_AFR_TYPICAL) - log10_failures_per_year
    return ReliabilityComparison(
        log10_failures_per_year=log10_failures_per_year,
        log10_margin_vs_disk=margin,
    )


def mean_years_to_failure(log10_failures_per_year: float) -> float:
    """Expected years until one failure at the given rate."""
    return 10.0 ** (-log10_failures_per_year)


def afr_from_mtbf_hours(mtbf_hours: float) -> float:
    """Annualized failure rate from an MTBF spec (exponential model)."""
    if mtbf_hours <= 0:
        raise ValueError("mtbf_hours must be positive")
    return 1.0 - math.exp(-8766.0 / mtbf_hours)
