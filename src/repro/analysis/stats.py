"""Small statistics helpers shared by benches and reports."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; raises on non-positive entries."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geometric_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def percentile_summary(values: Sequence[float]) -> Dict[str, float]:
    """Mean/median/p95/p99/max summary of a latency-like population."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


def relative_change(baseline: float, value: float) -> float:
    """(value - baseline) / baseline; 0 when baseline is 0 and value is 0."""
    if baseline == 0:
        if value == 0:
            return 0.0
        raise ZeroDivisionError("relative_change with zero baseline")
    return (value - baseline) / baseline


def poisson_rate_interval(count: int, exposure: float, z: float = 1.96) -> tuple:
    """Normal-approximation confidence interval for a Poisson rate."""
    if exposure <= 0:
        raise ValueError("exposure must be positive")
    rate = count / exposure
    half = z * np.sqrt(max(count, 1)) / exposure
    return (max(0.0, rate - half), rate + half)
