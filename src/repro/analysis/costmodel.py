"""The mitigation comparison cost model (claim C7).

Normalizes every mitigation's outcome to a common report row:
residual errors (protection), performance overhead (extra
activation-equivalents and stalls), energy overhead, and storage cost
— the axes along which §II-C compares the seven countermeasures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class MitigationReport:
    """One row of the mitigation comparison table.

    Attributes:
        name: mitigation label.
        residual_flips: errors that still occurred under the mitigation.
        baseline_flips: errors with no mitigation (same workload).
        perf_overhead: fraction of extra device time consumed.
        energy_overhead: fraction of extra dynamic energy consumed.
        storage_bits: dedicated hardware state, if any.
        notes: free-form caveat (deployment constraints etc.).
    """

    name: str
    residual_flips: int
    baseline_flips: int
    perf_overhead: float
    energy_overhead: float
    storage_bits: int = 0
    notes: str = ""

    @property
    def protection_fraction(self) -> float:
        """Fraction of baseline errors eliminated."""
        if self.baseline_flips == 0:
            return 1.0
        return 1.0 - self.residual_flips / self.baseline_flips

    @property
    def eliminates_all(self) -> bool:
        return self.residual_flips == 0


def report_rows(reports: List[MitigationReport]) -> List[list]:
    """Table rows for :func:`repro.analysis.tables.format_table`."""
    return [
        [
            r.name,
            r.residual_flips,
            f"{100 * r.protection_fraction:.1f}%",
            f"{100 * r.perf_overhead:.2f}%",
            f"{100 * r.energy_overhead:.2f}%",
            r.storage_bits,
            r.notes,
        ]
        for r in reports
    ]


MITIGATION_TABLE_HEADERS = (
    "mitigation",
    "residual",
    "protection",
    "perf ovh",
    "energy ovh",
    "storage(b)",
    "notes",
)


def perf_overhead_from_times(baseline_ns: float, mitigated_ns: float) -> float:
    """Extra simulated time fraction attributable to the mitigation."""
    if baseline_ns <= 0:
        raise ValueError("baseline_ns must be positive")
    return max(0.0, (mitigated_ns - baseline_ns) / baseline_ns)


def energy_overhead_from_accounts(baseline_nj: float, mitigated_nj: float) -> float:
    """Extra dynamic energy fraction attributable to the mitigation."""
    if baseline_nj <= 0:
        raise ValueError("baseline_nj must be positive")
    return max(0.0, (mitigated_nj - baseline_nj) / baseline_nj)


def refresh_burden_vs_density(
    row_counts=(32768, 65536, 131072, 262144, 524288),
    banks: int = 8,
    refresh_row_nj: float = 13.0,
    background_nw_per_ns: float = 0.08,
    activity_nj_per_ns: float = 0.15,
    tREFW_ns: float = 64e6,
    base_tRFC_ns: float = 160.0,
    base_rows: int = 32768,
    tREFI_ns: float = 7800.0,
) -> list:
    """Refresh's share of DRAM energy and bandwidth as density grows.

    §II-C: "DRAM refresh is already a significant burden on energy
    consumption, performance, and quality of service" — the burden
    scales with the number of rows (more rows per window) and with
    tRFC (more rows per REF command).  This is the RAIDR motivation
    table: refresh share grows from a few percent toward dominance as
    devices densify.
    """
    out = []
    for rows in row_counts:
        refresh_rate_nj_per_ns = rows * banks * refresh_row_nj / tREFW_ns
        total_rate = refresh_rate_nj_per_ns + background_nw_per_ns + activity_nj_per_ns
        tRFC = base_tRFC_ns * rows / base_rows
        out.append(
            {
                "rows": rows,
                "refresh_energy_share": refresh_rate_nj_per_ns / total_rate,
                "bandwidth_overhead": min(1.0, tRFC / tREFI_ns),
            }
        )
    return out


def storage_bits_for(name: str, rows: int, banks: int, table_entries: Optional[int] = None, counter_bits: int = 16) -> int:
    """Canonical storage figures used in the comparison table."""
    if name == "para":
        return 0  # PARA is stateless — its headline advantage.
    if name == "cra-full":
        return rows * banks * counter_bits
    if name == "cra-table":
        if table_entries is None:
            raise ValueError("cra-table needs table_entries")
        import math

        tag = math.ceil(math.log2(rows)) + math.ceil(math.log2(banks))
        return table_entries * (counter_bits + tag)
    if name in ("refresh", "anvil", "trr"):
        return 0 if name != "trr" else 64 * banks  # small sampler
    raise KeyError(f"unknown mitigation {name!r}")
