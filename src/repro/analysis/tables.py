"""Plain-text table rendering for bench and example output."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table.

    Cells are stringified; floats are shown with 4 significant digits.
    """
    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def log_axis_bucket(value: float) -> str:
    """Human label for a log-scale magnitude (Figure 1 style)."""
    if value <= 0:
        return "0"
    import math

    exponent = int(math.floor(math.log10(value)))
    return f"10^{exponent}"
