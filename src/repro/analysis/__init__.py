"""Statistics, reliability math, cost modeling, and report tables."""

from repro.analysis.costmodel import (
    MITIGATION_TABLE_HEADERS,
    MitigationReport,
    energy_overhead_from_accounts,
    perf_overhead_from_times,
    refresh_burden_vs_density,
    report_rows,
    storage_bits_for,
)
from repro.analysis.reliability import (
    FIELD_DRAM_UE_PER_DEVICE_YEAR,
    HARD_DISK_AFR_HIGH,
    HARD_DISK_AFR_LOW,
    HARD_DISK_AFR_TYPICAL,
    ReliabilityComparison,
    afr_from_mtbf_hours,
    compare_to_disk,
    mean_years_to_failure,
)
from repro.analysis.stats import geometric_mean, percentile_summary, poisson_rate_interval, relative_change
from repro.analysis.figure import ascii_bars, ascii_log_scatter
from repro.analysis.tables import format_table, log_axis_bucket

__all__ = [
    "MITIGATION_TABLE_HEADERS",
    "MitigationReport",
    "energy_overhead_from_accounts",
    "perf_overhead_from_times",
    "refresh_burden_vs_density",
    "report_rows",
    "storage_bits_for",
    "FIELD_DRAM_UE_PER_DEVICE_YEAR",
    "HARD_DISK_AFR_HIGH",
    "HARD_DISK_AFR_LOW",
    "HARD_DISK_AFR_TYPICAL",
    "ReliabilityComparison",
    "afr_from_mtbf_hours",
    "compare_to_disk",
    "mean_years_to_failure",
    "geometric_mean",
    "percentile_summary",
    "poisson_rate_interval",
    "relative_change",
    "ascii_bars",
    "ascii_log_scatter",
    "format_table",
    "log_axis_bucket",
]
