"""A set-associative last-level cache model.

RowHammer is only reachable from user space if the attacker's accesses
*miss* the cache on every iteration — otherwise the row is never
re-activated.  §II-A's "very simple user-level program" uses CLFLUSH;
the JavaScript variant [33] has no flush instruction and must build
*eviction sets* instead.  This cache model is what makes those two
strategies (and their different achievable hammer rates) expressible.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.utils.validation import check_positive, check_power_of_two


class SetAssociativeCache:
    """A physically indexed, LRU, set-associative cache.

    Args:
        size_bytes: total capacity.
        line_bytes: cache-line size.
        ways: associativity.
    """

    def __init__(self, size_bytes: int = 8 * 1024 * 1024, line_bytes: int = 64, ways: int = 16) -> None:
        check_positive("size_bytes", size_bytes)
        check_power_of_two("line_bytes", line_bytes)
        check_positive("ways", ways)
        self.line_bytes = line_bytes
        self.ways = ways
        self.n_sets = size_bytes // (line_bytes * ways)
        if self.n_sets < 1 or size_bytes % (line_bytes * ways):
            raise ValueError("size must be a multiple of line_bytes * ways")
        # Per-set tag list in LRU order (front = LRU, back = MRU).
        self._sets: List[List[int]] = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _index_tag(self, address: int):
        line = address // self.line_bytes
        return line % self.n_sets, line // self.n_sets

    def set_index(self, address: int) -> int:
        """Cache set an address maps to."""
        return self._index_tag(address)[0]

    def access(self, address: int) -> bool:
        """Access one address; returns True on hit.  Misses fill the line
        (evicting the LRU way if the set is full)."""
        index, tag = self._index_tag(address)
        ways = self._sets[index]
        if tag in ways:
            self.hits += 1
            ways.remove(tag)
            ways.append(tag)
            return True
        self.misses += 1
        if len(ways) >= self.ways:
            ways.pop(0)
            self.evictions += 1
        ways.append(tag)
        return False

    def flush(self, address: int) -> bool:
        """CLFLUSH: drop the line if present; returns True if it was cached."""
        index, tag = self._index_tag(address)
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            return True
        return False

    def contains(self, address: int) -> bool:
        """Whether the address's line is currently cached."""
        index, tag = self._index_tag(address)
        return tag in self._sets[index]

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


def build_eviction_set(cache: SetAssociativeCache, target: int, region_base: int, region_bytes: int) -> List[int]:
    """Addresses in a region that map to the target's cache set.

    Returns ``cache.ways`` congruent addresses — accessing them all
    evicts the target from a cache with true-LRU replacement (the
    primitive the JavaScript attack constructs by timing).
    """
    wanted = cache.set_index(target)
    out: List[int] = []
    address = region_base
    while address < region_base + region_bytes and len(out) < cache.ways:
        if cache.set_index(address) == wanted and address != target:
            out.append(address)
        address += cache.line_bytes
    if len(out) < cache.ways:
        raise ValueError("region too small to build a full eviction set")
    return out
