"""CPU-side substrate: cache model and user-level attack programs."""

from repro.cpu.cache import SetAssociativeCache, build_eviction_set
from repro.cpu.system import CpuMemorySystem, HammerRunStats

__all__ = [
    "SetAssociativeCache",
    "build_eviction_set",
    "CpuMemorySystem",
    "HammerRunStats",
]
