"""CPU-side memory system: cache in front of the DRAM module.

Loads that miss the cache become row activations at the device (via
the address mapping), which is exactly the attacker-visible interface
of §II-A: a user program controls only virtual loads and (optionally)
CLFLUSH, yet can drive the activation stream underneath.

The three canonical strategies:

* ``naive_hammer`` — plain loads: the cache absorbs them, nothing
  reaches DRAM (the reason caches were once thought to prevent this);
* ``flush_hammer`` — the released test program's CLFLUSH loop: every
  load misses, the maximum hammer rate;
* ``eviction_hammer`` — no flush instruction (JavaScript [33]): each
  target load is followed by an eviction-set walk, so only a fraction
  of issued loads hammer the target and the within-window activation
  budget shrinks accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cpu.cache import SetAssociativeCache, build_eviction_set
from repro.dram.mapping import AddressMapping
from repro.dram.module import DramModule


@dataclass
class HammerRunStats:
    """Outcome of a user-level hammer run.

    Attributes:
        loads: CPU loads issued.
        dram_activations: activations that reached the device (any row).
        target_activations: activations of the *aggressor* rows.
        flips: disturbance flips materialized by the run.
        elapsed_ns: simulated time.
    """

    loads: int
    dram_activations: int
    target_activations: int
    flips: int
    elapsed_ns: float

    @property
    def activation_efficiency(self) -> float:
        """Fraction of issued loads that hammered a target row."""
        return self.target_activations / self.loads if self.loads else 0.0

    def target_rate_per_us(self) -> float:
        """Aggressor activations per microsecond of simulated time."""
        return self.target_activations / (self.elapsed_ns / 1000.0) if self.elapsed_ns else 0.0

    def activations_per_window(self, tREFW_ns: float) -> float:
        """Aggressor activations achievable inside one refresh window."""
        return self.target_rate_per_us() * tREFW_ns / 1000.0


class CpuMemorySystem:
    """A cache + DRAM module driven by virtual loads.

    Args:
        module: the DRAM device.
        cache: the last-level cache in front of it.
        mapping: physical-address decomposition.
        hit_ns: latency charged per cache hit.
    """

    def __init__(
        self,
        module: DramModule,
        cache: Optional[SetAssociativeCache] = None,
        mapping: Optional[AddressMapping] = None,
        hit_ns: float = 1.2,
    ) -> None:
        self.module = module
        self.cache = cache if cache is not None else SetAssociativeCache()
        self.mapping = mapping if mapping is not None else AddressMapping(module.geometry)
        self.hit_ns = hit_ns
        self.time_ns = 0.0
        self.dram_accesses = 0

    # ------------------------------------------------------------------
    def load(self, address: int) -> bool:
        """One CPU load; returns True if it reached DRAM (cache miss)."""
        if self.cache.access(address):
            self.time_ns += self.hit_ns
            return False
        coord = self.mapping.decode(address)
        self.module.activate(coord.bank, coord.row, self.time_ns)
        self.module.precharge(coord.bank)
        self.time_ns += self.module.timing.tRC
        self.dram_accesses += 1
        return True

    def clflush(self, address: int) -> None:
        """Flush one line (costs a few ns)."""
        self.cache.flush(address)
        self.time_ns += 3.0

    def row_address(self, bank: int, row: int) -> int:
        """Physical address of a (bank, row) — attacker address arithmetic."""
        return self.mapping.row_address(bank, row)

    # ------------------------------------------------------------------
    # The §II-A attack programs
    # ------------------------------------------------------------------
    def _run(self, targets: List[int], body, iterations: int, time_budget_ns: Optional[float]) -> HammerRunStats:
        loads_before_run = self.cache.hits + self.cache.misses
        start_time = self.time_ns
        start_acts = self.dram_accesses
        before_flips = self.module.total_flips()
        target_acts = 0
        for _ in range(iterations):
            target_acts += body()
            if time_budget_ns is not None and self.time_ns - start_time >= time_budget_ns:
                break
        self.module.settle(self.time_ns)
        return HammerRunStats(
            loads=self.cache.hits + self.cache.misses - loads_before_run,
            dram_activations=self.dram_accesses - start_acts,
            target_activations=target_acts,
            flips=self.module.total_flips() - before_flips,
            elapsed_ns=self.time_ns - start_time,
        )

    def flush_hammer(
        self, bank: int, rows: Sequence[int], iterations: int, time_budget_ns: Optional[float] = None
    ) -> HammerRunStats:
        """The CLFLUSH hammer loop of the released test program:
        ``loop { mov (X); mov (Y); clflush (X); clflush (Y); }``."""
        addresses = [self.row_address(bank, row) for row in rows]

        def body() -> int:
            acts = 0
            for address in addresses:
                acts += self.load(address)
            for address in addresses:
                self.clflush(address)
            return acts

        return self._run(addresses, body, iterations, time_budget_ns)

    def naive_hammer(
        self, bank: int, rows: Sequence[int], iterations: int, time_budget_ns: Optional[float] = None
    ) -> HammerRunStats:
        """The same loop without CLFLUSH: the cache absorbs everything
        after the first touch — no hammering, the §II-A control case."""
        addresses = [self.row_address(bank, row) for row in rows]

        def body() -> int:
            acts = 0
            for address in addresses:
                acts += self.load(address)
            return acts

        return self._run(addresses, body, iterations, time_budget_ns)

    def eviction_hammer(
        self,
        bank: int,
        rows: Sequence[int],
        iterations: int,
        eviction_region_rows: Sequence[int] = (),
        time_budget_ns: Optional[float] = None,
    ) -> HammerRunStats:
        """Flush-free (JavaScript-style) hammering: after each target
        load, walk an eviction set congruent with the target line.

        Only the target loads count as hammering; the eviction walk
        consumes most of the loop's time, cutting the within-window
        activation budget — the engineering constraint [33] works under.
        """
        targets = [self.row_address(bank, row) for row in rows]
        region_rows = list(eviction_region_rows) or [max(rows) + 64 + i for i in range(128)]
        region_base = self.row_address(bank, region_rows[0])
        region_bytes = self.module.geometry.row_bytes * len(region_rows)
        eviction_sets = [
            build_eviction_set(self.cache, target, region_base, region_bytes) for target in targets
        ]

        def body() -> int:
            acts = 0
            for target, ev_set in zip(targets, eviction_sets):
                acts += self.load(target)
                for evict_address in ev_set:
                    self.load(evict_address)
            return acts

        return self._run(targets, body, iterations, time_budget_ns)
