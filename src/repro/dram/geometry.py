"""DRAM organization: channels, ranks, banks, rows, columns.

The simulator models a single-channel, single-rank module by default
(matching the per-module testing methodology of the ISCA 2014 RowHammer
study, where each module is exercised in isolation), but the geometry
type carries the full hierarchy so multi-rank systems can be composed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive, check_power_of_two


@dataclass(frozen=True)
class DramGeometry:
    """Physical organization of one DRAM module.

    Attributes:
        channels: independent memory channels.
        ranks: ranks per channel.
        banks: banks per rank.
        rows: rows per bank.
        row_bytes: bytes stored in one row (per rank, across devices).
    """

    channels: int = 1
    ranks: int = 1
    banks: int = 8
    rows: int = 32768
    row_bytes: int = 8192

    def __post_init__(self) -> None:
        check_positive("channels", self.channels)
        check_positive("ranks", self.ranks)
        check_power_of_two("banks", self.banks)
        check_power_of_two("rows", self.rows)
        check_power_of_two("row_bytes", self.row_bytes)

    @property
    def row_bits(self) -> int:
        """Bits stored in one row."""
        return self.row_bytes * 8

    @property
    def cells_per_bank(self) -> int:
        """Cells (bits) in one bank."""
        return self.rows * self.row_bits

    @property
    def total_cells(self) -> int:
        """Cells (bits) in the whole module."""
        return self.channels * self.ranks * self.banks * self.cells_per_bank

    @property
    def capacity_bytes(self) -> int:
        """Module capacity in bytes."""
        return self.total_cells // 8

    def check_bank(self, bank: int) -> None:
        """Validate a bank index."""
        if not 0 <= bank < self.banks:
            raise IndexError(f"bank {bank} out of range [0, {self.banks})")

    def check_row(self, row: int) -> None:
        """Validate a row index."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")


#: A small geometry convenient for unit tests (64 rows of 128 bytes).
TINY_GEOMETRY = DramGeometry(banks=2, rows=64, row_bytes=128)

#: A 2 GiB DDR3-style module: 8 banks x 32768 rows x 8 KiB rows.
DDR3_2GB = DramGeometry(banks=8, rows=32768, row_bytes=8192)

#: A 4 GiB module with denser banks, used for scaling studies.
DDR3_4GB = DramGeometry(banks=8, rows=65536, row_bytes=8192)
