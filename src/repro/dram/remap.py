"""Internal row remapping and adjacency information.

DRAM manufacturers remap externally visible (logical) row addresses to
internal (physical) rows — for fault tolerance and layout reasons — so
the memory controller generally does *not* know which rows are
physically adjacent.  The paper notes this as the key obstacle to
implementing PARA in the controller, and proposes exposing adjacency
through the SPD ROM.

:class:`RowRemapper` models three schemes observed in practice, and
exposes the physical-adjacency oracle.  :meth:`RowRemapper.spd_table`
plays the role of the SPD-published mapping the paper advocates.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.utils.validation import check_power_of_two


class RowRemapper:
    """Logical <-> physical row remapping inside one bank.

    Args:
        rows: number of rows in the bank (power of two).
        scheme: one of
            ``"identity"`` — logical row *is* the physical row;
            ``"xor-msb"`` — physical = logical XOR (logical >> 1 & mask),
            a scramble akin to twisted wordline layouts;
            ``"block-swap"`` — swaps the two halves of every 8-row block,
            modeling redundancy-region style relocation.
    """

    SCHEMES = ("identity", "xor-msb", "block-swap")

    def __init__(self, rows: int, scheme: str = "identity") -> None:
        check_power_of_two("rows", rows)
        if scheme not in self.SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; expected one of {self.SCHEMES}")
        self.rows = rows
        self.scheme = scheme

    def to_physical(self, logical: int) -> int:
        """Map a logical row to its physical row."""
        self._check(logical)
        if self.scheme == "identity":
            return logical
        if self.scheme == "xor-msb":
            return logical ^ ((logical >> 1) & 0b1)
        # block-swap: within each aligned block of 8, swap rows 0-3 with 4-7.
        return (logical & ~0b111) | ((logical & 0b111) ^ 0b100)

    def to_logical(self, physical: int) -> int:
        """Map a physical row back to its logical row."""
        self._check(physical)
        if self.scheme == "identity":
            return physical
        if self.scheme == "xor-msb":
            # xor-msb is an involution on the low bit given the fixed upper bits.
            return physical ^ ((physical >> 1) & 0b1)
        return (physical & ~0b111) | ((physical & 0b111) ^ 0b100)

    def physical_neighbors(self, physical: int, distance: int = 1) -> List[int]:
        """Physically adjacent rows at ``distance`` (the true victims)."""
        self._check(physical)
        neighbors = []
        for cand in (physical - distance, physical + distance):
            if 0 <= cand < self.rows:
                neighbors.append(cand)
        return neighbors

    def logical_neighbors_of_logical(self, logical: int, distance: int = 1) -> List[int]:
        """Logical addresses of the physical neighbors of a logical row.

        This is what a controller with full SPD adjacency knowledge
        would refresh when mitigating an aggressor at ``logical``.
        """
        phys = self.to_physical(logical)
        return [self.to_logical(p) for p in self.physical_neighbors(phys, distance)]

    def naive_neighbors(self, logical: int, distance: int = 1) -> List[int]:
        """Logical +/- distance — what a controller *without* adjacency info guesses."""
        self._check(logical)
        return [cand for cand in (logical - distance, logical + distance) if 0 <= cand < self.rows]

    def spd_table(self) -> List[Tuple[int, int]]:
        """The SPD-style published mapping: (logical, physical) for every row."""
        return [(logical, self.to_physical(logical)) for logical in range(self.rows)]

    def _check(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
