"""A DRAM module: banks + disturbance model + remapping + identity.

The module is the device-side endpoint the memory controller drives.
Logical (externally visible) row addresses pass through the module's
:class:`~repro.dram.remap.RowRemapper` before reaching the banks, which
operate in physical row space — mirroring the manufacturer-internal
remapping the paper identifies as the obstacle to controller-side PARA.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.dram.bank import DramBank
from repro.dram.disturbance import DisturbanceModel, VulnerabilityProfile
from repro.dram.geometry import DDR3_2GB, DramGeometry
from repro.dram.remap import RowRemapper
from repro.dram.timing import DDR3_1333, TimingParams
from repro.dram.vintage import profile_for
from repro.utils.rng import derive_seed


class DramModule:
    """One DRAM module under test.

    Args:
        geometry: physical organization.
        timing: timing parameters.
        profile: disturbance vulnerability.
        serial: module identifier (participates in seeding).
        manufacturer: vendor label ("A"/"B"/"C" in the study).
        manufacture_date: fractional year of manufacture.
        remap_scheme: internal row remapping scheme.
        default_pattern: background data fill.
        seed: experiment root seed.
        engine: DRAM engine for the banks (``"columnar"``/``"reference"``;
            default follows ``REPRO_DRAM_ENGINE``).
    """

    def __init__(
        self,
        geometry: DramGeometry = DDR3_2GB,
        timing: TimingParams = DDR3_1333,
        profile: Optional[VulnerabilityProfile] = None,
        serial: str = "M0",
        manufacturer: str = "A",
        manufacture_date: float = 2013.0,
        remap_scheme: str = "identity",
        default_pattern: str = "solid1",
        seed: int = 0,
        engine: Optional[str] = None,
    ) -> None:
        if profile is None:
            profile = profile_for(manufacturer, manufacture_date)
        self.geometry = geometry
        self.timing = timing
        self.profile = profile
        self.serial = serial
        self.manufacturer = manufacturer
        self.manufacture_date = manufacture_date
        self.seed = derive_seed(seed, "module", serial)
        self.remapper = RowRemapper(geometry.rows, remap_scheme)
        self.model = DisturbanceModel(geometry, profile, self.seed)
        self.banks: List[DramBank] = [
            DramBank(geometry, self.model, i, default_pattern, engine=engine)
            for i in range(geometry.banks)
        ]

    @property
    def engine(self) -> str:
        """The DRAM engine the module's banks run on."""
        return self.banks[0].engine

    @classmethod
    def from_vintage(
        cls,
        manufacturer: str,
        manufacture_date: float,
        serial: str = "M0",
        seed: int = 0,
        geometry: DramGeometry = DDR3_2GB,
        timing: TimingParams = DDR3_1333,
        **kwargs,
    ) -> "DramModule":
        """Build a module whose vulnerability follows the vintage calibration."""
        return cls(
            geometry=geometry,
            timing=timing,
            profile=profile_for(manufacturer, manufacture_date),
            serial=serial,
            manufacturer=manufacturer,
            manufacture_date=manufacture_date,
            seed=seed,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Logical-row operations (the external interface)
    # ------------------------------------------------------------------
    def bank(self, index: int) -> DramBank:
        """Access bank ``index``."""
        self.geometry.check_bank(index)
        return self.banks[index]

    def activate(self, bank: int, logical_row: int, time: float = 0.0) -> None:
        """Activate a logical row."""
        self.bank(bank).activate(self.remapper.to_physical(logical_row), time)

    def precharge(self, bank: int) -> None:
        """Precharge (close) the bank's open row."""
        self.bank(bank).precharge()

    def read_row(self, bank: int, logical_row: int, time: float = 0.0) -> np.ndarray:
        """Read a logical row as a bit array."""
        return self.bank(bank).read(self.remapper.to_physical(logical_row), time)

    def write_row(self, bank: int, logical_row: int, bits: np.ndarray, time: float = 0.0) -> None:
        """Write a logical row from a bit array."""
        self.bank(bank).write(self.remapper.to_physical(logical_row), bits, time)

    def refresh_row(self, bank: int, logical_row: int, time: float = 0.0) -> np.ndarray:
        """Refresh one logical row; returns pre-refresh flips."""
        return self.bank(bank).refresh_row(self.remapper.to_physical(logical_row), time)

    def refresh_physical_row(self, bank: int, physical_row: int, time: float = 0.0) -> np.ndarray:
        """Refresh one physical row (in-DRAM mitigations know true adjacency)."""
        return self.bank(bank).refresh_row(physical_row, time)

    def refresh_physical_rows(self, bank: int, physical_rows, time: float = 0.0) -> int:
        """Refresh a batch of physical rows in one bank; return flip count.

        The auto-refresh engine issues its round-robin chunks through
        this path so the columnar engine can materialize the whole
        chunk in one batched pass.
        """
        return self.bank(bank).refresh_rows(physical_rows, time)

    def execute(self, bank: int, stream) -> int:
        """Run a :class:`~repro.dram.stream.CommandStream` on one bank
        (physical row space); return the flips it materialized."""
        return self.bank(bank).execute(stream)

    # ------------------------------------------------------------------
    # Summary helpers
    # ------------------------------------------------------------------
    def total_flips(self) -> int:
        """Total disturbance flips materialized across all banks."""
        return sum(b.stats.flips_materialized for b in self.banks)

    def total_activations(self) -> int:
        """Total activate commands across all banks."""
        return sum(b.stats.activations for b in self.banks)

    def settle(self, time: float = 0.0) -> int:
        """Materialize pending flips in every bank; return the count."""
        return sum(b.settle(time) for b in self.banks)

    def __repr__(self) -> str:
        return (
            f"DramModule(serial={self.serial!r}, manufacturer={self.manufacturer!r}, "
            f"date={self.manufacture_date}, density={self.profile.weak_cell_density:g})"
        )
