"""DDR timing parameters and derived quantities.

All times are in nanoseconds.  The defaults correspond to DDR3-1333
(the dominant speed grade among the modules of the ISCA 2014 study);
the derived :meth:`TimingParams.max_activations_per_refresh_window`
matches the paper's observation that a row pair can be activated on
the order of 1.3 million times inside one 64 ms refresh window.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.units import MS, US
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TimingParams:
    """DRAM timing constraints (nanoseconds).

    Attributes:
        tCK: clock period.
        tRCD: activate to read/write delay.
        tRP: precharge period.
        tRAS: minimum row-open time.
        tRC: activate-to-activate delay for one bank (tRAS + tRP).
        tCL: read latency.
        tWR: write recovery.
        tRFC: refresh cycle time (one REF command).
        tREFI: average refresh command interval.
        tREFW: refresh window — every row refreshed once per window.
        tRRD: activate-to-activate delay across banks of one rank.
        tFAW: four-activate window — at most 4 ACTs per rank per tFAW.
    """

    tCK: float = 1.5
    tRCD: float = 13.5
    tRP: float = 13.5
    tRAS: float = 36.0
    tRC: float = 49.5
    tCL: float = 13.5
    tWR: float = 15.0
    tRFC: float = 160.0
    tREFI: float = 7.8 * US
    tREFW: float = 64.0 * MS
    tRRD: float = 6.0
    tFAW: float = 30.0

    def __post_init__(self) -> None:
        for name in (
            "tCK", "tRCD", "tRP", "tRAS", "tRC", "tCL", "tWR", "tRFC",
            "tREFI", "tREFW", "tRRD", "tFAW",
        ):
            check_positive(name, getattr(self, name))
        if self.tRC < self.tRAS + self.tRP - 1e-9:
            raise ValueError(
                f"tRC ({self.tRC}) must cover tRAS + tRP ({self.tRAS + self.tRP})"
            )
        if self.tFAW < self.tRRD:
            raise ValueError("tFAW must be at least tRRD")

    @property
    def rank_activation_rate_per_ns(self) -> float:
        """Max rank-wide ACT rate: min of the tRRD and tFAW limits."""
        return min(1.0 / self.tRRD, 4.0 / self.tFAW)

    @property
    def max_activations_per_refresh_window(self) -> int:
        """Maximum single-row activations inside one refresh window.

        This is the paper's attack-budget ceiling: an aggressor row can
        be opened and closed at most ``tREFW / tRC`` times before every
        row has been refreshed once.
        """
        return int(self.tREFW / self.tRC)

    @property
    def refresh_commands_per_window(self) -> int:
        """Number of REF commands issued per refresh window."""
        return int(round(self.tREFW / self.tREFI))

    def with_refresh_multiplier(self, k: float) -> "TimingParams":
        """Return timing with the refresh rate increased ``k``-fold.

        Both the refresh window and the refresh-command interval shrink
        by ``k``, matching the BIOS-patch mitigation deployed by system
        vendors after the RowHammer disclosure.
        """
        check_positive("k", k)
        return replace(self, tREFW=self.tREFW / k, tREFI=self.tREFI / k)


#: DDR3-1333 timing, the simulator default.
DDR3_1333 = TimingParams()

#: DDR3-1066-style timing with a slower 55 ns row cycle, used by the
#: paper's worst-case analysis (yields ~1.16M activations per window).
DDR3_1066 = TimingParams(tCK=1.875, tRCD=15.0, tRP=15.0, tRAS=37.5, tRC=55.0, tCL=15.0)

#: DDR4-2400-class timing: faster row cycle (larger attack budget per
#: window), bigger tRFC — the generation §II-B notes is still vulnerable.
DDR4_2400 = TimingParams(
    tCK=0.833,
    tRCD=13.32,
    tRP=13.32,
    tRAS=32.0,
    tRC=45.32,
    tCL=13.32,
    tRFC=350.0,
)
