"""Vintage calibration: vulnerability as a function of manufacture date.

Figure 1 of the paper plots RowHammer errors per 10^9 cells against
module manufacture date for three anonymized manufacturers (A, B, C)
over 2008-2014.  The salient shape, which these curves are calibrated
to reproduce:

* modules manufactured before 2010 show **zero** errors;
* error rates climb steeply after 2010 (the earliest vulnerable
  module dates to 2010);
* **all** modules from 2012-2013 are vulnerable;
* peak rates reach ~10^5-10^6 errors per 10^9 cells (manufacturer B
  highest, C lowest), with a slight decline visible in 2014 parts;
* the most vulnerable module flips its first bit after ~139K
  activations (``hc_first`` floor shrinks with date).

Absolute densities are synthetic — we have no silicon — but every
trend statement above is encoded here and verified by the field-study
benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.dram.disturbance import INVULNERABLE, VulnerabilityProfile

#: Manufacturer identifiers used throughout the field study.
MANUFACTURERS = ("A", "B", "C")


@dataclass(frozen=True)
class VintageCurve:
    """Density/threshold trend parameters for one manufacturer.

    Attributes:
        onset: date before which modules are invulnerable.
        peak_date: date of maximum weak-cell density.
        peak_density: weak-cell density at the peak.
        floor_density: density at onset (start of the log-linear ramp).
        decline_dex_per_year: post-peak decline, in decades per year.
    """

    onset: float
    peak_date: float
    peak_density: float
    floor_density: float = 1e-8
    decline_dex_per_year: float = 0.35

    def density(self, date: float) -> float:
        """Weak-cell density for a module manufactured at ``date``."""
        if date < self.onset:
            return 0.0
        log_floor = np.log10(self.floor_density)
        log_peak = np.log10(self.peak_density)
        if date <= self.peak_date:
            frac = (date - self.onset) / (self.peak_date - self.onset)
            return float(10 ** (log_floor + frac * (log_peak - log_floor)))
        return float(10 ** (log_peak - (date - self.peak_date) * self.decline_dex_per_year))


#: Calibrated per-manufacturer trend curves (B > A > C at peak, as in Fig. 1).
VINTAGE_CURVES: Dict[str, VintageCurve] = {
    "A": VintageCurve(onset=2010.2, peak_date=2013.0, peak_density=3.0e-4),
    "B": VintageCurve(onset=2010.4, peak_date=2013.2, peak_density=2.0e-3),
    "C": VintageCurve(onset=2010.0, peak_date=2012.5, peak_density=6.0e-5, decline_dex_per_year=0.6),
}

#: hc_first floor trend: (date, threshold) anchor points, log-interpolated.
_HC_MIN_ANCHORS = ((2010.0, 600_000.0), (2012.0, 250_000.0), (2013.0, 165_000.0), (2014.5, 139_000.0))


def hc_first_min_for_date(date: float) -> float:
    """Module-level minimum hammer count at ``date`` (newer = weaker)."""
    dates = np.array([a[0] for a in _HC_MIN_ANCHORS])
    values = np.log(np.array([a[1] for a in _HC_MIN_ANCHORS]))
    return float(np.exp(np.interp(date, dates, values)))


def profile_for(manufacturer: str, date: float) -> VulnerabilityProfile:
    """Build the vulnerability profile of a module.

    Args:
        manufacturer: one of ``"A"``, ``"B"``, ``"C"``.
        date: manufacture date as a fractional year, e.g. ``2012.75``.
    """
    try:
        curve = VINTAGE_CURVES[manufacturer]
    except KeyError:
        raise KeyError(f"unknown manufacturer {manufacturer!r}; options: {MANUFACTURERS}") from None
    density = curve.density(date)
    if density <= 0:
        return INVULNERABLE
    hc_min = hc_first_min_for_date(date)
    return VulnerabilityProfile(
        weak_cell_density=density,
        hc_first_min=hc_min,
        hc_first_median=hc_min * 5.0,
        hc_first_sigma=0.45,
    )
