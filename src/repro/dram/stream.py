"""Command streams: the batch unit of the columnar DRAM engine.

A :class:`CommandStream` is an append-only sequence of bank commands
(ACT/PRE/REF/SETTLE/WRITE/READ) that can be executed two ways:

* replayed one command at a time through the per-command reference
  path (:meth:`repro.dram.bank.DramBank.execute`), or
* compiled into numpy event arrays and applied wholesale by the
  columnar engine (:mod:`repro.dram.columnar`).

Both executions are defined to produce identical simulator state; the
differential oracle (:mod:`repro.dram.differential`) holds them to it.

The stream layer is deliberately dumb: plain parallel Python lists,
no numpy until an executor asks for arrays, and no model imports, so
every layer (attacks, campaigns, experiments) can build streams
without caring which engine will run them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional

import numpy as np

__all__ = [
    "OP_ACT",
    "OP_PRE",
    "OP_REF_ROW",
    "OP_REF_ALL",
    "OP_SETTLE",
    "OP_WRITE",
    "OP_READ",
    "OP_NAMES",
    "Command",
    "CommandStream",
]

#: Command opcodes.  ACT/PRE form batchable runs; everything else is a
#: barrier that flushes the pending run before executing.
OP_ACT, OP_PRE, OP_REF_ROW, OP_REF_ALL, OP_SETTLE, OP_WRITE, OP_READ = range(7)

OP_NAMES = ("act", "pre", "ref_row", "ref_all", "settle", "write", "read")


class Command(NamedTuple):
    """One decoded stream entry (``row``/``count`` are -1/0 when unused)."""

    op: int
    row: int
    count: int
    time: float
    index: int


class CommandStream:
    """An append-only bank command sequence.

    Builder methods return ``self`` so streams chain::

        stream = CommandStream().act(63, 1000).act(65, 1000).settle()
    """

    __slots__ = ("_op", "_row", "_count", "_time", "_payloads")

    def __init__(self) -> None:
        self._op: List[int] = []
        self._row: List[int] = []
        self._count: List[int] = []
        self._time: List[float] = []
        self._payloads: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def _append(self, op: int, row: int, count: int, time: float) -> "CommandStream":
        self._op.append(op)
        self._row.append(row)
        self._count.append(count)
        self._time.append(time)
        return self

    def act(self, row: int, count: int = 1, time: float = 0.0) -> "CommandStream":
        """``count`` back-to-back activations of ``row`` (a bulk ACT)."""
        return self._append(OP_ACT, row, count, time)

    def pre(self, time: float = 0.0) -> "CommandStream":
        """Precharge (close the open row)."""
        return self._append(OP_PRE, -1, 0, time)

    def ref_row(self, row: int, time: float = 0.0) -> "CommandStream":
        """Refresh one physical row."""
        return self._append(OP_REF_ROW, row, 0, time)

    def ref_all(self, time: float = 0.0) -> "CommandStream":
        """Refresh every row with accumulated disturbance state."""
        return self._append(OP_REF_ALL, -1, 0, time)

    def settle(self, time: float = 0.0) -> "CommandStream":
        """Materialize pending flips everywhere (no refresh semantics)."""
        return self._append(OP_SETTLE, -1, 0, time)

    def write(self, row: int, bits: np.ndarray, time: float = 0.0) -> "CommandStream":
        """Activate-and-write ``row`` with a full bit array."""
        self._payloads[len(self._op)] = np.asarray(bits, dtype=np.uint8)
        return self._append(OP_WRITE, row, 0, time)

    def read(self, row: int, time: float = 0.0) -> "CommandStream":
        """Activate-and-read ``row`` (result discarded; drives state only)."""
        return self._append(OP_READ, row, 0, time)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._op)

    def __iter__(self) -> Iterator[Command]:
        for i in range(len(self._op)):
            yield Command(self._op[i], self._row[i], self._count[i],
                          self._time[i], i)

    def payload(self, index: int) -> Optional[np.ndarray]:
        """The write data attached to command ``index`` (None otherwise)."""
        return self._payloads.get(index)

    def arrays(self):
        """The stream as ``(op, row, count, time)`` numpy arrays."""
        return (
            np.asarray(self._op, dtype=np.int64),
            np.asarray(self._row, dtype=np.int64),
            np.asarray(self._count, dtype=np.int64),
            np.asarray(self._time, dtype=np.float64),
        )

    def __repr__(self) -> str:
        from collections import Counter

        kinds = Counter(OP_NAMES[op] for op in self._op)
        body = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
        return f"CommandStream({len(self)} commands: {body})"
