"""One DRAM bank: row buffer state, stored data, disturbance accounting.

The bank operates purely in **physical** row space; the module layer
translates logical (externally visible) rows through the remapper.

Disturbance bookkeeping per row:

* ``pressure`` — weighted adjacent-row activations since the row was
  last refreshed (by REF, or implicitly by its own activation).
* ``peak`` — the maximum pressure reached since flips were last
  materialized into the stored data.

Flips are materialized lazily whenever the row's cells are next sensed
(own activation or refresh), which is exact: a weak cell flips iff the
pressure crossed its threshold at any point while the data was resident.

Two interchangeable engines implement these semantics:

``reference``
    This class: per-row dicts mutated one command at a time.  Simple,
    obviously faithful to the prose above — the **oracle** the
    differential harness (:mod:`repro.dram.differential`) holds the
    fast engine to.
``columnar``
    :class:`repro.dram.columnar.ColumnarDramBank`: dense per-bank numpy
    state and a batched :class:`~repro.dram.stream.CommandStream`
    executor.  The default.

``DramBank(...)`` dispatches on the ``REPRO_DRAM_ENGINE`` environment
variable (or an explicit ``engine=`` argument), so every consumer —
attacks, campaigns, experiments, tests — transparently constructs
whichever engine is selected while keeping this exact public API.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from itertools import repeat
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dram.datapatterns import PatternFn, get_pattern
from repro.dram.disturbance import DisturbanceModel
from repro.dram.geometry import DramGeometry
from repro.dram.stream import (
    OP_ACT,
    OP_PRE,
    OP_READ,
    OP_REF_ALL,
    OP_REF_ROW,
    OP_SETTLE,
    OP_WRITE,
    CommandStream,
)
from repro.sanitizer import runtime as sanit
from repro.telemetry import physics as phys
from repro.telemetry import runtime as telem

#: Bucket edges for the flips-per-materialization histogram.
_FLIP_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

#: Engine selector environment variable.
ENV_ENGINE = "REPRO_DRAM_ENGINE"

#: Recognized engine names.
ENGINES = ("columnar", "reference")

#: Flip-log bound override (integer; ``off`` disables the cap).
ENV_FLIP_LOG_CAP = "REPRO_FLIP_LOG_CAP"

#: Default per-bank flip-log bound — large enough for every experiment
#: in the repo, small enough that a fleet sweep cannot eat the heap.
DEFAULT_FLIP_LOG_CAP = 1_000_000


def default_engine() -> str:
    """The engine ``DramBank(...)`` constructs, from ``REPRO_DRAM_ENGINE``."""
    raw = os.environ.get(ENV_ENGINE, "").strip().lower()
    if not raw:
        return "columnar"
    if raw not in ENGINES:
        raise ValueError(
            f"unknown {ENV_ENGINE} value {raw!r}; expected one of {', '.join(ENGINES)}"
        )
    return raw


def _flip_log_cap_from_env() -> Optional[int]:
    raw = os.environ.get(ENV_FLIP_LOG_CAP, "").strip().lower()
    if not raw:
        return DEFAULT_FLIP_LOG_CAP
    if raw in ("off", "none", "unbounded"):
        return None
    return max(0, int(raw))


@dataclass
class BankStats:
    """Activity counters for one bank.

    ``flip_log`` holds at most ``flip_log_cap`` entries of
    ``(row, bit, time, aggressor, hammer, pattern, epoch)`` — each
    flip's full provenance: the dominant aggressor row at flip time
    (``-1`` when none claimed the victim), the accumulated hammer
    pressure that tripped the cell, the stored data pattern, and the
    refresh epoch (``refresh_epoch``, bumped once per bank-wide REF)
    the flip was observed in.  Overflow is counted in ``flips_dropped``
    instead of grown without bound (``flips_materialized`` always
    counts every flip).
    """

    activations: int = 0
    refreshes: int = 0
    reads: int = 0
    writes: int = 0
    flips_materialized: int = 0
    flip_log: List[tuple] = field(default_factory=list)
    flip_log_cap: Optional[int] = field(default_factory=_flip_log_cap_from_env)
    flips_dropped: int = 0
    bank_index: int = 0
    refresh_epoch: int = 0

    def record_flips(self, row: int, bits: np.ndarray, time: float,
                     aggressor: int = -1, hammer: float = 0.0,
                     pattern: str = "") -> None:
        """Log materialized flips with provenance — vectorized, capped."""
        n = len(bits)
        if n == 0:
            return
        self.flips_materialized += n
        epoch = self.refresh_epoch
        if phys.physics_on:
            phys.get_collector().record_flip_window(
                self.bank_index, int(row), n, float(hammer), int(aggressor),
                pattern, epoch)
        cap = self.flip_log_cap
        if cap is not None:
            room = cap - len(self.flip_log)
            if room < n:
                room = max(room, 0)
                self.flips_dropped += n - room
                bits = bits[:room]
                n = room
                if n == 0:
                    return
        bit_list = bits.tolist() if isinstance(bits, np.ndarray) else [int(b) for b in bits]
        self.flip_log.extend(zip(repeat(int(row), n), bit_list,
                                 repeat(float(time), n),
                                 repeat(int(aggressor), n),
                                 repeat(float(hammer), n),
                                 repeat(pattern, n), repeat(epoch, n)))

    def record_flips_batch(self, rows: np.ndarray, bits: np.ndarray,
                           times: np.ndarray,
                           aggressors: Optional[np.ndarray] = None,
                           hammers: Optional[np.ndarray] = None,
                           pattern: str = "") -> None:
        """Log many events' flips at once — parallel per-flip arrays in
        log order.  Equivalent to per-event :meth:`record_flips` calls:
        the cap truncates the same prefix and drops the same count."""
        n = len(bits)
        if n == 0:
            return
        self.flips_materialized += n
        if aggressors is None:
            aggressors = np.full(n, -1, dtype=np.int64)
        if hammers is None:
            hammers = np.zeros(n)
        epoch = self.refresh_epoch
        if phys.physics_on:
            collector = phys.get_collector()
            for row, agg, hammer in zip(rows.tolist(), aggressors.tolist(),
                                        hammers.tolist()):
                collector.record_flip_window(self.bank_index, int(row), 1,
                                             float(hammer), int(agg),
                                             pattern, epoch)
        cap = self.flip_log_cap
        if cap is not None:
            room = cap - len(self.flip_log)
            if room < n:
                room = max(room, 0)
                self.flips_dropped += n - room
                if room == 0:
                    return
                rows, bits, times = rows[:room], bits[:room], times[:room]
                aggressors, hammers = aggressors[:room], hammers[:room]
                n = room
        self.flip_log.extend(zip(rows.tolist(), bits.tolist(), times.tolist(),
                                 aggressors.tolist(), hammers.tolist(),
                                 repeat(pattern, n), repeat(epoch, n)))


class DramBank:
    """A single DRAM bank with disturbance-aware storage.

    Constructing ``DramBank(...)`` directly returns the engine selected
    by ``REPRO_DRAM_ENGINE`` (columnar by default); this class's own
    method bodies are the per-command **reference** implementation.

    Args:
        geometry: module organization (rows/row size are read from it).
        model: the module's disturbance model.
        index: bank index within the module.
        default_pattern: fill applied to rows never explicitly written.
        engine: explicit engine override (``"columnar"``/``"reference"``).
    """

    #: Engine name this class implements (overridden by subclasses).
    engine = "reference"

    def __new__(
        cls,
        geometry: DramGeometry = None,
        model: DisturbanceModel = None,
        index: int = 0,
        default_pattern: str = "solid1",
        engine: Optional[str] = None,
    ) -> "DramBank":
        if cls is DramBank:
            name = engine or default_engine()
            if name == "columnar":
                from repro.dram.columnar import ColumnarDramBank

                return super().__new__(ColumnarDramBank)
            if name != "reference":
                raise ValueError(
                    f"unknown DRAM engine {name!r}; expected one of {', '.join(ENGINES)}"
                )
        return super().__new__(cls)

    def __init__(
        self,
        geometry: DramGeometry,
        model: DisturbanceModel,
        index: int,
        default_pattern: str = "solid1",
        engine: Optional[str] = None,
    ) -> None:
        geometry.check_bank(index)
        self.geometry = geometry
        self.model = model
        self.index = index
        self.default_pattern_name = default_pattern
        self._default_pattern: PatternFn = get_pattern(default_pattern)
        self.open_row: Optional[int] = None
        self.stats = BankStats(bank_index=index)
        self._init_storage()

    def _init_storage(self) -> None:
        """Install the per-row state containers (engine-specific)."""
        self._data: Dict[int, np.ndarray] = {}
        self._pressure: Dict[int, float] = {}
        self._peak: Dict[int, float] = {}
        self._last_aggressor: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Data access (physical rows)
    # ------------------------------------------------------------------
    def row_bits(self, row: int) -> np.ndarray:
        """The stored bit array of ``row`` (instantiated on first touch)."""
        self.geometry.check_row(row)
        bits = self._data.get(row)
        if bits is None:
            fill = self._default_pattern(row, self.geometry.row_bytes)
            bits = np.unpackbits(fill, bitorder="little")
            self._data[row] = bits
            if sanit.sanitize_on:
                sanit.note("dram.bank", self, row=row)
        return bits

    def set_default_pattern(self, name: str) -> None:
        """Change the background fill for untouched rows."""
        self._default_pattern = get_pattern(name)
        self.default_pattern_name = name

    # ------------------------------------------------------------------
    # Disturbance bookkeeping
    # ------------------------------------------------------------------
    def pressure(self, row: int) -> float:
        """Current accumulated pressure of ``row``."""
        return self._pressure.get(row, 0.0)

    def _bump(self, victim: int, weight: float, aggressor: int, record_aggressor: bool = True) -> None:
        if not 0 <= victim < self.geometry.rows:
            return
        new = self._pressure.get(victim, 0.0) + weight
        self._pressure[victim] = new
        if new > self._peak.get(victim, 0.0):
            self._peak[victim] = new
        if record_aggressor:
            # Only immediate neighbors determine the coupling data
            # pattern; weak distance-2 bumps don't claim aggressor-ship.
            self._last_aggressor[victim] = aggressor

    def _materialize(self, row: int, time: float, cause: str = "activate") -> np.ndarray:
        """Apply any pending flips of ``row`` to its stored data."""
        peak = self._peak.get(row, 0.0)
        if peak <= 0:
            return np.empty(0, dtype=np.int64)
        bits = self.row_bits(row)
        aggressor = self._last_aggressor.get(row)
        agg_bits = self.row_bits(aggressor) if aggressor is not None else None
        flipped = self.model.apply_flips(self.index, row, peak, bits, agg_bits)
        self._peak[row] = 0.0
        if len(flipped):
            if sanit.sanitize_on:
                sanit.note("dram.bank", self, row=row)
            self.stats.record_flips(
                row, flipped, time,
                aggressor=-1 if aggressor is None else int(aggressor),
                hammer=peak, pattern=self.default_pattern_name)
            if telem.metrics_on:
                telem.counter("dram_bit_flips_total",
                              bank=self.index, cause=cause).inc(len(flipped))
                telem.histogram("dram_flips_per_event",
                                edges=_FLIP_BUCKETS).observe(len(flipped))
            if telem.trace_on:
                telem.trace("bit_flip", t=time, bank=self.index, row=row,
                            bits=len(flipped), cause=cause)
        return flipped

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def activate(self, row: int, time: float = 0.0) -> None:
        """Open ``row``: sense its cells (materializing flips, resetting its
        disturbance state) and disturb its neighbors."""
        self.geometry.check_row(row)
        if sanit.sanitize_on:
            sanit.check("dram.bank", self, row=row)
        self.stats.activations += 1
        if telem.metrics_on:
            telem.counter("dram_activations_total", bank=self.index).inc()
        if telem.trace_on:
            telem.trace("activate", t=time, bank=self.index, row=row)
        if phys.physics_on:
            phys.get_collector().record_activation(self.index, row)
        self._materialize(row, time)
        self._pressure[row] = 0.0
        self._peak[row] = 0.0
        self.open_row = row
        self._bump(row - 1, 1.0, row)
        self._bump(row + 1, 1.0, row)
        d2 = self.model.profile.distance2_weight
        if d2 > 0:
            self._bump(row - 2, d2, row, record_aggressor=False)
            self._bump(row + 2, d2, row, record_aggressor=False)

    def bulk_activate(self, row: int, count: int, time: float = 0.0) -> None:
        """Apply ``count`` back-to-back activations of ``row`` in one call.

        Exact fast path for hammering loops: pressure accumulation is
        linear in the activation count and thresholds are only checked
        at materialization, so ``count`` activations with no interleaved
        refresh are equivalent to one bulk update.
        """
        self.geometry.check_row(row)
        if count <= 0:
            return
        if sanit.sanitize_on:
            sanit.check("dram.bank", self, row=row)
        self.stats.activations += count
        if telem.metrics_on:
            telem.counter("dram_activations_total", bank=self.index).inc(count)
        if telem.trace_on:
            telem.trace("activate", t=time, bank=self.index, row=row, count=count)
        if phys.physics_on:
            phys.get_collector().record_activation(self.index, row, count)
        if telem.spans_on:
            with telem.span("dram.bulk_activate"):
                return self._bulk_activate_body(row, count, time)
        return self._bulk_activate_body(row, count, time)

    def _bulk_activate_body(self, row: int, count: int, time: float) -> None:
        self._materialize(row, time)
        self._pressure[row] = 0.0
        self._peak[row] = 0.0
        self.open_row = row
        self._bump(row - 1, float(count), row)
        self._bump(row + 1, float(count), row)
        d2 = self.model.profile.distance2_weight
        if d2 > 0:
            self._bump(row - 2, d2 * count, row, record_aggressor=False)
            self._bump(row + 2, d2 * count, row, record_aggressor=False)

    def precharge(self) -> None:
        """Close the open row."""
        self.open_row = None

    def read(self, row: int, time: float = 0.0) -> np.ndarray:
        """Activate-and-read: return a copy of the row's bits."""
        if self.open_row != row:
            self.activate(row, time)
        elif sanit.sanitize_on:
            sanit.check("dram.bank", self, row=row)
        self.stats.reads += 1
        if telem.metrics_on:
            telem.counter("dram_reads_total", bank=self.index).inc()
        return self.row_bits(row).copy()

    def write(self, row: int, bits: np.ndarray, time: float = 0.0) -> None:
        """Activate-and-write: replace the row's contents."""
        if self.open_row != row:
            self.activate(row, time)
        elif sanit.sanitize_on:
            sanit.check("dram.bank", self, row=row)
        expected = self.geometry.row_bits
        if bits.shape != (expected,):
            raise ValueError(f"row data must have shape ({expected},), got {bits.shape}")
        self.stats.writes += 1
        if telem.metrics_on:
            telem.counter("dram_writes_total", bank=self.index).inc()
        self._data[row] = bits.astype(np.uint8, copy=True)
        self._pressure[row] = 0.0
        self._peak[row] = 0.0
        if sanit.sanitize_on:
            sanit.note("dram.bank", self, row=row)

    def write_bytes(self, row: int, data: bytes, time: float = 0.0) -> None:
        """Write raw bytes (must be exactly one row)."""
        arr = np.frombuffer(bytes(data), dtype=np.uint8)
        if arr.size != self.geometry.row_bytes:
            raise ValueError(f"expected {self.geometry.row_bytes} bytes, got {arr.size}")
        self.write(row, np.unpackbits(arr, bitorder="little"), time)

    def read_bytes(self, row: int, time: float = 0.0) -> bytes:
        """Read one row as raw bytes."""
        return np.packbits(self.read(row, time), bitorder="little").tobytes()

    def refresh_row(self, row: int, time: float = 0.0) -> np.ndarray:
        """Refresh ``row``: materialize pending flips, reset disturbance state.

        Returns the bit indices that flipped before this refresh caught
        the row (useful for mitigation-effectiveness accounting).
        """
        self.geometry.check_row(row)
        if sanit.sanitize_on:
            sanit.check("dram.bank", self, row=row)
        self.stats.refreshes += 1
        if telem.metrics_on:
            telem.counter("dram_refreshes_total", bank=self.index).inc()
        if telem.trace_on:
            telem.trace("refresh", t=time, bank=self.index, row=row)
        if not self._peak.get(row) and not self._pressure.get(row):
            # Undisturbed row: refresh is a no-op for the model.
            return np.empty(0, dtype=np.int64)
        flipped = self._materialize(row, time, cause="refresh")
        self._pressure[row] = 0.0
        self._peak[row] = 0.0
        return flipped

    def refresh_rows(self, rows: Sequence[int], time: float = 0.0) -> int:
        """Refresh a batch of physical rows; return the flip count.

        Equivalent to calling :meth:`refresh_row` per row in order (the
        columnar engine overrides this with one batched pass).
        """
        flips = 0
        for row in rows:
            flips += len(self.refresh_row(row, time))
        return flips

    def refresh_all(self, time: float = 0.0) -> int:
        """Refresh every row that has any accumulated state; return flip count."""
        with telem.span("dram.refresh_all"):
            flips = 0
            for row in list(self._peak):
                flips += len(self.refresh_row(row, time))
            # Flips caught by this REF belong to the epoch that just
            # ended; the next epoch starts after materialization.
            self.stats.refresh_epoch += 1
            return flips

    def settle(self, time: float = 0.0) -> int:
        """Materialize pending flips everywhere without resetting counters'
        refresh semantics — used by checkers at end of an experiment."""
        with telem.span("dram.settle"):
            flips = 0
            for row in list(self._peak):
                flips += len(self._materialize(row, time, cause="settle"))
            if telem.metrics_on:
                telem.histogram("dram_rows_touched").observe(len(self._data))
            return flips

    # ------------------------------------------------------------------
    # Command streams
    # ------------------------------------------------------------------
    def execute(self, stream: CommandStream) -> int:
        """Run a :class:`~repro.dram.stream.CommandStream`; return the
        number of flips materialized while it ran.

        This body is the per-command **reference replay** (each entry
        dispatches to the matching scalar command); the columnar engine
        overrides it with the batched executor.  Both must produce
        identical bank state — the differential oracle's contract.
        """
        with telem.span("dram.execute"):
            before = self.stats.flips_materialized
            for cmd in stream:
                op = cmd.op
                if op == OP_ACT:
                    self.bulk_activate(cmd.row, cmd.count, cmd.time)
                elif op == OP_PRE:
                    self.precharge()
                elif op == OP_REF_ROW:
                    self.refresh_row(cmd.row, cmd.time)
                elif op == OP_REF_ALL:
                    self.refresh_all(cmd.time)
                elif op == OP_SETTLE:
                    self.settle(cmd.time)
                elif op == OP_WRITE:
                    self.write(cmd.row, stream.payload(cmd.index), cmd.time)
                elif op == OP_READ:
                    self.read(cmd.row, cmd.time)
                else:  # pragma: no cover - builder can't produce this
                    raise ValueError(f"unknown stream opcode {op}")
            return self.stats.flips_materialized - before

    def touched_rows(self) -> List[int]:
        """Rows whose data has been instantiated."""
        return sorted(self._data)
