"""The RowHammer disturbance fault model.

The model follows the experimental characterization of the ISCA 2014
study the paper builds on:

* A small fraction of cells are *weak*: repeated activation of an
  adjacent row disturbs them enough to lose charge before the next
  refresh.  Each weak cell has an ``hc_first`` threshold — the number
  of adjacent-row activations (within one refresh window of the
  victim) after which it flips.
* Flips are **charge loss**: a true cell flips 1 -> 0, an anti cell
  flips 0 -> 1.  A cell that stores its discharged value cannot flip.
  This reproduces the observed data-pattern dependence.
* A further fraction of weak cells are *aggressor sensitive*: they are
  only fully coupled when the aggressor stores the opposite value of
  the victim cell; otherwise their effective threshold is relieved by
  a constant factor.
* Disturbance is strongest for immediately adjacent rows; rows at
  distance two receive a small residual coupling (``distance2_weight``).
  Double-sided hammering therefore roughly doubles the pressure a
  victim accumulates, matching the observed ~2x effectiveness gain.

Weak-cell placement is a deterministic function of (module seed, bank,
row), so a module's error map is stable across runs and experiments —
the paper's "consistently predictable bit locations" property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dram.geometry import DramGeometry
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive, check_probability

#: Weak-cell cache entries kept per model before eviction.
_CACHE_LIMIT = 4096


@dataclass(frozen=True)
class VulnerabilityProfile:
    """Per-module disturbance vulnerability parameters.

    Attributes:
        weak_cell_density: fraction of cells with a finite hammer threshold.
        hc_first_median: median activations-to-first-flip among weak cells.
        hc_first_sigma: lognormal shape of the threshold distribution.
        hc_first_min: hard floor — the module's most vulnerable cell.
        anti_cell_fraction: fraction of cells wired as anti cells
            (charged state encodes 0).
        aggressor_sensitive_fraction: fraction of weak cells whose
            coupling depends on the aggressor's stored data.
        dpd_relief: threshold multiplier for aggressor-sensitive cells
            when the aggressor pattern does not oppose the victim.
        distance2_weight: coupling weight for rows two away (distance-1
            rows weigh 1.0).
    """

    weak_cell_density: float
    hc_first_median: float = 700_000.0
    hc_first_sigma: float = 0.45
    hc_first_min: float = 139_000.0
    anti_cell_fraction: float = 0.5
    aggressor_sensitive_fraction: float = 0.3
    dpd_relief: float = 3.0
    distance2_weight: float = 0.015

    def __post_init__(self) -> None:
        check_probability("weak_cell_density", self.weak_cell_density)
        check_probability("anti_cell_fraction", self.anti_cell_fraction)
        check_probability("aggressor_sensitive_fraction", self.aggressor_sensitive_fraction)
        check_probability("distance2_weight", self.distance2_weight)
        if self.weak_cell_density > 0:
            check_positive("hc_first_median", self.hc_first_median)
            check_positive("hc_first_min", self.hc_first_min)
            check_positive("dpd_relief", self.dpd_relief)
            if self.hc_first_min > self.hc_first_median:
                raise ValueError("hc_first_min must not exceed hc_first_median")

    @property
    def vulnerable(self) -> bool:
        """Whether the module can exhibit any disturbance error."""
        return self.weak_cell_density > 0


#: An invulnerable module (pre-2010 vintages in the study).
INVULNERABLE = VulnerabilityProfile(weak_cell_density=0.0)


@dataclass(frozen=True)
class WeakCellSet:
    """Weak cells of one row, as parallel arrays.

    Attributes:
        bits: bit positions within the row (sorted, unique).
        hc_first: per-cell activation thresholds.
        anti: True where the cell is an anti cell (charged == 0).
        aggressor_sensitive: True where coupling depends on aggressor data.
    """

    bits: np.ndarray
    hc_first: np.ndarray
    anti: np.ndarray
    aggressor_sensitive: np.ndarray

    def __len__(self) -> int:
        return len(self.bits)


_EMPTY = WeakCellSet(
    bits=np.empty(0, dtype=np.int64),
    hc_first=np.empty(0, dtype=np.float64),
    anti=np.empty(0, dtype=bool),
    aggressor_sensitive=np.empty(0, dtype=bool),
)


class DisturbanceModel:
    """Deterministic weak-cell map and flip evaluation for one module.

    Args:
        geometry: module organization.
        profile: vulnerability parameters.
        seed: module seed; weak cells are a pure function of
            ``(seed, bank, row)``.
    """

    def __init__(self, geometry: DramGeometry, profile: VulnerabilityProfile, seed: int = 0) -> None:
        self.geometry = geometry
        self.profile = profile
        self.seed = seed
        self._cache: Dict[Tuple[int, int], WeakCellSet] = {}

    def weak_cells(self, bank: int, row: int) -> WeakCellSet:
        """Return the weak cells of physical ``(bank, row)`` (cached)."""
        self.geometry.check_bank(bank)
        self.geometry.check_row(row)
        key = (bank, row)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        cells = self._generate(bank, row)
        if len(self._cache) >= _CACHE_LIMIT:
            self._cache.clear()
        self._cache[key] = cells
        return cells

    def _generate(self, bank: int, row: int) -> WeakCellSet:
        profile = self.profile
        if not profile.vulnerable:
            return _EMPTY
        rng = derive_rng(self.seed, "weak", bank, row)
        row_bits = self.geometry.row_bits
        count = rng.binomial(row_bits, profile.weak_cell_density)
        if count == 0:
            return _EMPTY
        bits = np.sort(rng.choice(row_bits, size=count, replace=False))
        mu = np.log(profile.hc_first_median)
        hc = np.exp(rng.normal(mu, profile.hc_first_sigma, size=count))
        hc = np.maximum(hc, profile.hc_first_min)
        anti = rng.random(count) < profile.anti_cell_fraction
        sensitive = rng.random(count) < profile.aggressor_sensitive_fraction
        return WeakCellSet(bits=bits, hc_first=hc, anti=anti, aggressor_sensitive=sensitive)

    def charged_values(self, cells: WeakCellSet) -> np.ndarray:
        """The stored value that makes each weak cell flippable."""
        return (~cells.anti).astype(np.uint8)

    def flip_mask(
        self,
        bank: int,
        row: int,
        pressure: float,
        data_bits: np.ndarray,
        aggressor_bits: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return the row-bit indices that flip under ``pressure``.

        Args:
            bank, row: physical location of the victim.
            pressure: accumulated weighted adjacent activations since the
                victim's last refresh (peak value).
            data_bits: the victim row contents as a 0/1 bit array.
            aggressor_bits: dominant aggressor row contents; when ``None``
                aggressor-sensitive cells get worst-case (full) coupling.
        """
        cells = self.weak_cells(bank, row)
        if len(cells) == 0 or pressure <= 0:
            return np.empty(0, dtype=np.int64)
        thresholds = cells.hc_first
        if aggressor_bits is not None:
            victim_vals = data_bits[cells.bits]
            agg_vals = aggressor_bits[cells.bits]
            relieved = cells.aggressor_sensitive & (agg_vals == victim_vals)
            thresholds = np.where(relieved, thresholds * self.profile.dpd_relief, thresholds)
        crossed = pressure >= thresholds
        charged = self.charged_values(cells)
        flippable = data_bits[cells.bits] == charged
        return cells.bits[crossed & flippable]

    def apply_flips(
        self,
        bank: int,
        row: int,
        pressure: float,
        data_bits: np.ndarray,
        aggressor_bits: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Apply disturbance flips in place; return the flipped bit indices."""
        flipped = self.flip_mask(bank, row, pressure, data_bits, aggressor_bits)
        if len(flipped):
            data_bits[flipped] ^= 1
        return flipped

    def count_flips_uniform(
        self,
        bank: int,
        rows: range,
        pressure: float,
        data_bits_for_row,
        aggressor_bits_for_row=None,
    ) -> int:
        """Vectorized campaign helper: total flips across ``rows``.

        ``data_bits_for_row`` maps a physical row index to its bit array;
        used by the field-study path that skips cycle simulation.
        """
        total = 0
        for row in rows:
            agg = aggressor_bits_for_row(row) if aggressor_bits_for_row else None
            total += len(self.flip_mask(bank, row, pressure, data_bits_for_row(row), agg))
        return total

    def min_threshold(self, bank: int, rows: range) -> float:
        """Smallest ``hc_first`` across ``rows`` (inf if no weak cells)."""
        best = float("inf")
        for row in rows:
            cells = self.weak_cells(bank, row)
            if len(cells):
                best = min(best, float(cells.hc_first.min()))
        return best
