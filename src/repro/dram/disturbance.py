"""The RowHammer disturbance fault model.

The model follows the experimental characterization of the ISCA 2014
study the paper builds on:

* A small fraction of cells are *weak*: repeated activation of an
  adjacent row disturbs them enough to lose charge before the next
  refresh.  Each weak cell has an ``hc_first`` threshold — the number
  of adjacent-row activations (within one refresh window of the
  victim) after which it flips.
* Flips are **charge loss**: a true cell flips 1 -> 0, an anti cell
  flips 0 -> 1.  A cell that stores its discharged value cannot flip.
  This reproduces the observed data-pattern dependence.
* A further fraction of weak cells are *aggressor sensitive*: they are
  only fully coupled when the aggressor stores the opposite value of
  the victim cell; otherwise their effective threshold is relieved by
  a constant factor.
* Disturbance is strongest for immediately adjacent rows; rows at
  distance two receive a small residual coupling (``distance2_weight``).
  Double-sided hammering therefore roughly doubles the pressure a
  victim accumulates, matching the observed ~2x effectiveness gain.

Weak-cell placement is a deterministic function of (module seed, bank,
block), so a module's error map is stable across runs and experiments —
the paper's "consistently predictable bit locations" property.  Cells
are generated one :data:`BLOCK_ROWS`-row **block** at a time
(:meth:`DisturbanceModel.weak_cells_block`): one derived generator
serves vectorized draws for the whole block, amortizing the dominant
per-``Generator`` construction cost ~100x versus per-row derivation.
Per-row :meth:`~DisturbanceModel.weak_cells` views are zero-copy slices
of the block's CSR arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dram.geometry import DramGeometry
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive, check_probability

#: Weak-cell cache entries (blocks) kept per model before eviction.
_CACHE_LIMIT = 4096

#: Rows generated per weak-cell block.  Part of the deterministic map:
#: changing it changes which rng serves which row.
BLOCK_ROWS = 128


@dataclass(frozen=True)
class VulnerabilityProfile:
    """Per-module disturbance vulnerability parameters.

    Attributes:
        weak_cell_density: fraction of cells with a finite hammer threshold.
        hc_first_median: median activations-to-first-flip among weak cells.
        hc_first_sigma: lognormal shape of the threshold distribution.
        hc_first_min: hard floor — the module's most vulnerable cell.
        anti_cell_fraction: fraction of cells wired as anti cells
            (charged state encodes 0).
        aggressor_sensitive_fraction: fraction of weak cells whose
            coupling depends on the aggressor's stored data.
        dpd_relief: threshold multiplier for aggressor-sensitive cells
            when the aggressor pattern does not oppose the victim.
        distance2_weight: coupling weight for rows two away (distance-1
            rows weigh 1.0).
    """

    weak_cell_density: float
    hc_first_median: float = 700_000.0
    hc_first_sigma: float = 0.45
    hc_first_min: float = 139_000.0
    anti_cell_fraction: float = 0.5
    aggressor_sensitive_fraction: float = 0.3
    dpd_relief: float = 3.0
    distance2_weight: float = 0.015

    def __post_init__(self) -> None:
        check_probability("weak_cell_density", self.weak_cell_density)
        check_probability("anti_cell_fraction", self.anti_cell_fraction)
        check_probability("aggressor_sensitive_fraction", self.aggressor_sensitive_fraction)
        check_probability("distance2_weight", self.distance2_weight)
        if self.weak_cell_density > 0:
            check_positive("hc_first_median", self.hc_first_median)
            check_positive("hc_first_min", self.hc_first_min)
            check_positive("dpd_relief", self.dpd_relief)
            if self.hc_first_min > self.hc_first_median:
                raise ValueError("hc_first_min must not exceed hc_first_median")

    @property
    def vulnerable(self) -> bool:
        """Whether the module can exhibit any disturbance error."""
        return self.weak_cell_density > 0


#: An invulnerable module (pre-2010 vintages in the study).
INVULNERABLE = VulnerabilityProfile(weak_cell_density=0.0)


@dataclass(frozen=True)
class WeakCellSet:
    """Weak cells of one row, as parallel arrays.

    Attributes:
        bits: bit positions within the row (sorted, unique).
        hc_first: per-cell activation thresholds.
        anti: True where the cell is an anti cell (charged == 0).
        aggressor_sensitive: True where coupling depends on aggressor data.
    """

    bits: np.ndarray
    hc_first: np.ndarray
    anti: np.ndarray
    aggressor_sensitive: np.ndarray

    def __len__(self) -> int:
        return len(self.bits)


_EMPTY = WeakCellSet(
    bits=np.empty(0, dtype=np.int64),
    hc_first=np.empty(0, dtype=np.float64),
    anti=np.empty(0, dtype=bool),
    aggressor_sensitive=np.empty(0, dtype=bool),
)


def _sorted_unique(a: np.ndarray) -> np.ndarray:
    """Sorted distinct values of ``a`` (sort+mask: much faster than the
    hash-based ``np.unique`` on the small arrays this module handles)."""
    if len(a) == 0:
        return a
    a = np.sort(a)
    return a[np.concatenate(([True], a[1:] != a[:-1]))]


@dataclass(frozen=True)
class WeakCellBlock:
    """Weak cells of :data:`BLOCK_ROWS` consecutive rows, CSR-packed.

    ``offsets[i]:offsets[i+1]`` slices the cell arrays for physical row
    ``start + i``.  ``min_hc[i]`` is the row's smallest threshold
    (``inf`` for rows with no weak cells) — the vectorized scan paths
    use it to discard rows that cannot flip without touching data.
    """

    start: int
    n_rows: int
    offsets: np.ndarray
    bits: np.ndarray
    hc_first: np.ndarray
    anti: np.ndarray
    aggressor_sensitive: np.ndarray
    min_hc: np.ndarray

    def __len__(self) -> int:
        return len(self.bits)

    def row(self, row: int) -> WeakCellSet:
        """Zero-copy :class:`WeakCellSet` view of one row in the block."""
        i = row - self.start
        lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
        if lo == hi:
            return _EMPTY
        return WeakCellSet(
            bits=self.bits[lo:hi],
            hc_first=self.hc_first[lo:hi],
            anti=self.anti[lo:hi],
            aggressor_sensitive=self.aggressor_sensitive[lo:hi],
        )


def _empty_block(start: int, n_rows: int) -> WeakCellBlock:
    return WeakCellBlock(
        start=start,
        n_rows=n_rows,
        offsets=np.zeros(n_rows + 1, dtype=np.int64),
        bits=_EMPTY.bits,
        hc_first=_EMPTY.hc_first,
        anti=_EMPTY.anti,
        aggressor_sensitive=_EMPTY.aggressor_sensitive,
        min_hc=np.full(n_rows, np.inf),
    )


class DisturbanceModel:
    """Deterministic weak-cell map and flip evaluation for one module.

    Args:
        geometry: module organization.
        profile: vulnerability parameters.
        seed: module seed; weak cells are a pure function of
            ``(seed, bank, block)``.
    """

    def __init__(self, geometry: DramGeometry, profile: VulnerabilityProfile, seed: int = 0) -> None:
        self.geometry = geometry
        self.profile = profile
        self.seed = seed
        self.cache_limit = _CACHE_LIMIT
        self._cache: Dict[Tuple[int, int], WeakCellBlock] = {}

    # ------------------------------------------------------------------
    # Weak-cell map (block-generated, row-sliced)
    # ------------------------------------------------------------------
    def weak_cells_block(self, bank: int, row: int) -> WeakCellBlock:
        """The weak-cell block containing physical ``(bank, row)`` (cached).

        Entries evict oldest-inserted-first (dict insertion order) at
        :attr:`cache_limit`, so a long sweep thrashes at most one block
        instead of regenerating the whole working set.
        """
        self.geometry.check_bank(bank)
        self.geometry.check_row(row)
        start = row - row % BLOCK_ROWS
        key = (bank, start)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        block = self._generate_block(bank, start)
        while self._cache and len(self._cache) >= self.cache_limit:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = block
        return block

    def weak_cells(self, bank: int, row: int) -> WeakCellSet:
        """Return the weak cells of physical ``(bank, row)``."""
        return self.weak_cells_block(bank, row).row(row)

    def _generate_block(self, bank: int, start: int) -> WeakCellBlock:
        profile = self.profile
        n_rows = min(BLOCK_ROWS, self.geometry.rows - start)
        if not profile.vulnerable:
            return _empty_block(start, n_rows)
        rng = derive_rng(self.seed, "weakblock", bank, start)
        row_bits = self.geometry.row_bits
        counts = rng.binomial(row_bits, profile.weak_cell_density, size=n_rows)
        total = int(counts.sum())
        if total == 0:
            return _empty_block(start, n_rows)
        # Draw positions with replacement for the whole block, then
        # dedupe per row in one global pass (row*row_bits+bit keys sort
        # grouped-by-row, ascending-within-row — exactly the CSR order).
        # Rows that lost positions to duplicates redraw their deficit;
        # the loop is deterministic and terminates almost immediately at
        # realistic densities.
        row_of = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
        keys = _sorted_unique(row_of * row_bits + rng.integers(0, row_bits, size=total))
        have = np.bincount(keys // row_bits, minlength=n_rows)
        while True:
            deficit = counts - have
            short = np.nonzero(deficit > 0)[0]
            if len(short) == 0:
                break
            extra_rows = np.repeat(short, deficit[short])
            extra = extra_rows * row_bits + rng.integers(
                0, row_bits, size=len(extra_rows))
            keys = _sorted_unique(np.concatenate([keys, extra]))
            have = np.bincount(keys // row_bits, minlength=n_rows)
        bits = keys % row_bits
        offsets = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        mu = np.log(profile.hc_first_median)
        hc = np.exp(rng.normal(mu, profile.hc_first_sigma, size=total))
        hc = np.maximum(hc, profile.hc_first_min)
        anti = rng.random(total) < profile.anti_cell_fraction
        sensitive = rng.random(total) < profile.aggressor_sensitive_fraction
        min_hc = np.full(n_rows, np.inf)
        np.minimum.at(min_hc, keys // row_bits, hc)
        return WeakCellBlock(
            start=start,
            n_rows=n_rows,
            offsets=offsets,
            bits=bits,
            hc_first=hc,
            anti=anti,
            aggressor_sensitive=sensitive,
            min_hc=min_hc,
        )

    # ------------------------------------------------------------------
    # Flip evaluation
    # ------------------------------------------------------------------
    def charged_values(self, cells: WeakCellSet) -> np.ndarray:
        """The stored value that makes each weak cell flippable."""
        return (~cells.anti).astype(np.uint8)

    def flip_mask_batch(
        self,
        cells,
        pressures,
        victim_vals: np.ndarray,
        agg_vals: Optional[np.ndarray] = None,
        agg_valid: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized flip decision over pre-gathered cell values.

        This is the one implementation of the flip rule; the per-row
        :meth:`flip_mask` and the columnar engine's batched
        materialization both delegate here.

        Args:
            cells: a :class:`WeakCellSet` (or any object with
                ``hc_first``/``anti``/``aggressor_sensitive`` arrays) —
                possibly a concatenation spanning many rows.
            pressures: scalar or per-cell peak pressure.
            victim_vals: stored value of each cell (0/1).
            agg_vals: dominant-aggressor value at each cell's bit
                position; ``None`` means worst-case (full) coupling.
            agg_valid: per-cell mask of where ``agg_vals`` is
                meaningful (cells whose victim row has no recorded
                aggressor get worst-case coupling, like ``None``).

        Returns:
            Boolean mask over the cells, True where the cell flips.
        """
        thresholds = cells.hc_first
        if agg_vals is not None:
            relieved = cells.aggressor_sensitive & (agg_vals == victim_vals)
            if agg_valid is not None:
                relieved &= agg_valid
            thresholds = np.where(relieved, thresholds * self.profile.dpd_relief, thresholds)
        crossed = pressures >= thresholds
        flippable = victim_vals == (~cells.anti).astype(np.uint8)
        return crossed & flippable

    def flip_mask(
        self,
        bank: int,
        row: int,
        pressure: float,
        data_bits: np.ndarray,
        aggressor_bits: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return the row-bit indices that flip under ``pressure``.

        Args:
            bank, row: physical location of the victim.
            pressure: accumulated weighted adjacent activations since the
                victim's last refresh (peak value).
            data_bits: the victim row contents as a 0/1 bit array.
            aggressor_bits: dominant aggressor row contents; when ``None``
                aggressor-sensitive cells get worst-case (full) coupling.
        """
        cells = self.weak_cells(bank, row)
        if len(cells) == 0 or pressure <= 0:
            return np.empty(0, dtype=np.int64)
        victim_vals = data_bits[cells.bits]
        agg_vals = aggressor_bits[cells.bits] if aggressor_bits is not None else None
        mask = self.flip_mask_batch(cells, pressure, victim_vals, agg_vals)
        return cells.bits[mask]

    def apply_flips(
        self,
        bank: int,
        row: int,
        pressure: float,
        data_bits: np.ndarray,
        aggressor_bits: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Apply disturbance flips in place; return the flipped bit indices."""
        flipped = self.flip_mask(bank, row, pressure, data_bits, aggressor_bits)
        if len(flipped):
            data_bits[flipped] ^= 1
        return flipped

    def count_flips_uniform(
        self,
        bank: int,
        rows: range,
        pressure: float,
        data_bits_for_row,
        aggressor_bits_for_row=None,
    ) -> int:
        """Vectorized campaign helper: total flips across ``rows``.

        ``data_bits_for_row`` maps a physical row index to its bit array;
        used by the field-study path that skips cycle simulation.  Rows
        whose smallest threshold exceeds ``pressure`` are discarded from
        the blocks' ``min_hc`` arrays without gathering any data, so the
        cost scales with rows that *can* flip, not rows scanned.
        """
        if pressure <= 0 or not self.profile.vulnerable or len(rows) == 0:
            return 0
        total = 0
        for block, local in self._blocks_overlapping(bank, rows):
            candidates = local[block.min_hc[local] <= pressure]
            for i in candidates:
                row = block.start + int(i)
                agg = aggressor_bits_for_row(row) if aggressor_bits_for_row else None
                total += len(self.flip_mask(bank, row, pressure,
                                            data_bits_for_row(row), agg))
        return total

    def min_threshold(self, bank: int, rows: range) -> float:
        """Smallest ``hc_first`` across ``rows`` (inf if no weak cells)."""
        best = float("inf")
        if not self.profile.vulnerable or len(rows) == 0:
            return best
        for block, local in self._blocks_overlapping(bank, rows):
            window = block.min_hc[local]
            if len(window):
                best = min(best, float(window.min()))
        return best

    def _blocks_overlapping(self, bank: int, rows: range):
        """Yield ``(block, local_indices)`` pairs covering ``rows``."""
        row_arr = np.arange(rows.start, rows.stop, rows.step, dtype=np.int64)
        row_arr = row_arr[(row_arr >= 0) & (row_arr < self.geometry.rows)]
        if len(row_arr) == 0:
            return
        for start in _sorted_unique(row_arr - row_arr % BLOCK_ROWS):
            block = self.weak_cells_block(bank, int(start))
            mask = (row_arr >= start) & (row_arr < start + block.n_rows)
            yield block, row_arr[mask] - start
