"""The columnar batched DRAM engine.

:class:`ColumnarDramBank` keeps the exact :class:`~repro.dram.bank.DramBank`
public API and semantics, but stores per-bank state **densely**:

* ``pressure`` / ``peak`` — float64 arrays indexed by physical row;
* ``last_agg`` — int64 array of dominant-aggressor rows (-1 = none);
* ``touched`` + ``touch_order`` — the reference engine's dict-key
  insertion order (which fixes ``refresh_all``/``settle`` iteration and
  therefore flip-log order), as a bool array plus an ordered list;
* stored data **sparsely**: an ``instantiated`` row mask, a ``store``
  dict of rows whose full bit array has been materialized, and a
  ``flips`` dict of flipped-bit indices for rows still representable as
  "background pattern XOR flips".  A 2 GiB-geometry hammering run never
  allocates its 64 K-bit row arrays unless someone actually reads them.

Whole :class:`~repro.dram.stream.CommandStream` ACT/PRE runs execute as
array programs: neighbor and distance-2 bumps become one event table
(scattered via ``lexsort`` + prefix sums), per-reset window pressures
and dominant aggressors come from segmented scans, and materialization
evaluates :meth:`DisturbanceModel.flip_mask_batch` over pre-filtered
candidate cells.  Scalar commands (``activate``, ``write``, ...) are
inherited from the reference implementation unchanged — they operate on
dict-like *views* of the columnar state, so sanitizer checkers, chaos
injectors, and tests poke the same attributes on both engines.

Equivalence contract: for any command sequence, this engine and the
reference engine produce identical flip logs, ``BankStats``, sanitizer
shadow digests, stored data, and touch order; pressure/peak values may
differ by float-summation reassociation at the ulp level (the batched
path adds each window once via prefix sums, the reference accumulates
per command).  :mod:`repro.dram.differential` enforces the contract on
randomized streams.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.dram.bank import _FLIP_BUCKETS, DramBank
from repro.dram.disturbance import BLOCK_ROWS, WeakCellSet, _sorted_unique
from repro.dram.stream import (
    OP_ACT,
    OP_PRE,
    OP_READ,
    OP_REF_ALL,
    OP_REF_ROW,
    OP_SETTLE,
    OP_WRITE,
    CommandStream,
)
from repro.sanitizer import runtime as sanit
from repro.telemetry import physics as phys
from repro.telemetry import runtime as telem

__all__ = ["ColumnarDramBank"]

#: Cached background-pattern byte rows (sparse value gathers read the
#: fill without unpacking whole rows); oldest-inserted evicted first.
_FILL_CACHE_LIMIT = 4096

_EMPTY_BITS = np.empty(0, dtype=np.int64)


class _ColumnarState:
    """Dense per-bank state backing the columnar engine.

    Columns allocate lazily on first access: a module constructs one
    state per bank, but untouched banks never pay for their arrays
    (the reference engine's empty dicts are equally free).
    """

    __slots__ = (
        "rows",
        "_pressure",
        "_peak",
        "_last_agg",
        "_touched",
        "touch_order",
        "_instantiated",
        "store",
        "flips",
        "fill_cache",
    )

    def __init__(self, rows: int) -> None:
        self.rows = rows
        self._pressure: Optional[np.ndarray] = None
        self._peak: Optional[np.ndarray] = None
        self._last_agg: Optional[np.ndarray] = None
        self._touched: Optional[np.ndarray] = None
        self.touch_order: List[int] = []
        self._instantiated: Optional[np.ndarray] = None
        self.store: Dict[int, np.ndarray] = {}
        self.flips: Dict[int, np.ndarray] = {}
        self.fill_cache: Dict[int, np.ndarray] = {}

    @property
    def pressure(self) -> np.ndarray:
        if self._pressure is None:
            self._pressure = np.zeros(self.rows, dtype=np.float64)
        return self._pressure

    @property
    def peak(self) -> np.ndarray:
        if self._peak is None:
            self._peak = np.zeros(self.rows, dtype=np.float64)
        return self._peak

    @property
    def last_agg(self) -> np.ndarray:
        if self._last_agg is None:
            self._last_agg = np.full(self.rows, -1, dtype=np.int64)
        return self._last_agg

    @property
    def touched(self) -> np.ndarray:
        if self._touched is None:
            self._touched = np.zeros(self.rows, dtype=bool)
        return self._touched

    @property
    def instantiated(self) -> np.ndarray:
        if self._instantiated is None:
            self._instantiated = np.zeros(self.rows, dtype=bool)
        return self._instantiated

    def touch(self, row: int) -> None:
        touched = self.touched
        if not touched[row]:
            touched[row] = True
            self.touch_order.append(int(row))


class _ChargeView:
    """Dict-like view of one float column keyed by touched rows.

    Mirrors the reference engine's ``_pressure``/``_peak`` dicts: keys
    are the touched rows in insertion order; reads of untouched rows
    fall back to the default (the backing array holds 0.0 there).
    """

    __slots__ = ("_state", "_column")

    def __init__(self, state: _ColumnarState, column: str) -> None:
        self._state = state
        self._column = column  # state attribute name: "pressure" | "peak"

    def _hit(self, row: int) -> bool:
        state = self._state
        return (state._touched is not None and 0 <= row < state.rows
                and bool(state._touched[row]))

    def get(self, row: int, default=0.0):
        if self._hit(row):
            return float(getattr(self._state, self._column)[row])
        return default

    def __getitem__(self, row: int) -> float:
        if self._hit(row):
            return float(getattr(self._state, self._column)[row])
        raise KeyError(row)

    def __setitem__(self, row: int, value: float) -> None:
        getattr(self._state, self._column)[row] = value
        self._state.touch(row)

    def __contains__(self, row: int) -> bool:
        return self._hit(row)

    def __iter__(self) -> Iterator[int]:
        return iter(self._state.touch_order)

    def __len__(self) -> int:
        return len(self._state.touch_order)

    def __bool__(self) -> bool:
        return bool(self._state.touch_order)


class _LastAggressorView:
    """Dict-like view of the last-aggressor column (-1 encodes absent)."""

    __slots__ = ("_state",)

    def __init__(self, state: _ColumnarState) -> None:
        self._state = state

    def get(self, row: int, default=None):
        state = self._state
        if state._last_agg is not None and 0 <= row < state.rows:
            value = state._last_agg[row]
            if value >= 0:
                return int(value)
        return default

    def __getitem__(self, row: int) -> int:
        value = self.get(row)
        if value is None:
            raise KeyError(row)
        return value

    def __setitem__(self, row: int, value: int) -> None:
        self._state.last_agg[row] = value

    def __contains__(self, row: int) -> bool:
        return self.get(row) is not None


class _DataView:
    """Dict-like view of stored row data over the sparse representation.

    Reading a row through the view materializes its full bit array
    (content is unchanged — pattern XOR recorded flips), so callers
    that mutate rows in place (``apply_flips``, the chaos injector's
    raw array poke) always hold the authoritative storage.
    """

    __slots__ = ("_bank",)

    def __init__(self, bank: "ColumnarDramBank") -> None:
        self._bank = bank

    def get(self, row: int, default=None):
        state = self._bank._cs
        if (state._instantiated is not None and 0 <= row < state.rows
                and state._instantiated[row]):
            return self._bank._row_array(row)
        return default

    def __getitem__(self, row: int) -> np.ndarray:
        bits = self.get(row)
        if bits is None:
            raise KeyError(row)
        return bits

    def __setitem__(self, row: int, bits: np.ndarray) -> None:
        state = self._bank._cs
        state.store[row] = bits
        state.flips.pop(row, None)
        state.instantiated[row] = True

    def __contains__(self, row: int) -> bool:
        state = self._bank._cs
        return (state._instantiated is not None and 0 <= row < state.rows
                and bool(state._instantiated[row]))

    def __iter__(self) -> Iterator[int]:
        mask = self._bank._cs._instantiated
        if mask is None:
            return iter(())
        return iter(np.nonzero(mask)[0].tolist())

    def __len__(self) -> int:
        mask = self._bank._cs._instantiated
        return 0 if mask is None else int(mask.sum())

    def __bool__(self) -> bool:
        mask = self._bank._cs._instantiated
        return mask is not None and bool(mask.any())


def _first_occurrence(values: np.ndarray) -> np.ndarray:
    """Indices of the first occurrence of each distinct value, ascending
    by position (order-preserving dedup without hash-based np.unique)."""
    order = np.argsort(values, kind="stable")
    ranked = values[order]
    first = np.concatenate(([True], ranked[1:] != ranked[:-1]))
    return np.sort(order[first])


class ColumnarDramBank(DramBank):
    """Columnar batched engine behind the :class:`DramBank` API."""

    engine = "columnar"

    def _init_storage(self) -> None:
        self._cs = _ColumnarState(self.geometry.rows)
        self._data = _DataView(self)
        self._pressure = _ChargeView(self._cs, "pressure")
        self._peak = _ChargeView(self._cs, "peak")
        self._last_aggressor = _LastAggressorView(self._cs)

    # ------------------------------------------------------------------
    # Sparse storage
    # ------------------------------------------------------------------
    def _fill_bytes(self, row: int) -> np.ndarray:
        """The row's background-fill bytes (shared, treat as read-only).

        Patterns that declare a ``row_period`` repeat every few rows, so
        the cache keys on ``row % period`` and one buffer serves every
        row of the class; aperiodic patterns cache per row.
        """
        state = self._cs
        period = getattr(self._default_pattern, "row_period", 0)
        key = row % period if period else row
        fill = state.fill_cache.get(key)
        if fill is None:
            fill = self._default_pattern(row, self.geometry.row_bytes)
            while state.fill_cache and len(state.fill_cache) >= _FILL_CACHE_LIMIT:
                state.fill_cache.pop(next(iter(state.fill_cache)))
            state.fill_cache[key] = fill
        return fill

    def _row_array(self, row: int) -> np.ndarray:
        """The row's full bit array, materialized into ``store``."""
        state = self._cs
        bits = state.store.get(row)
        if bits is None:
            bits = np.unpackbits(self._fill_bytes(row), bitorder="little")
            flips = state.flips.pop(row, None)
            if flips is not None:
                bits[flips] ^= 1
            state.store[row] = bits
            state.instantiated[row] = True
        return bits

    def _row_values(self, row: int, bits: np.ndarray) -> np.ndarray:
        """Stored 0/1 values of ``row`` at bit positions ``bits`` without
        materializing the row."""
        state = self._cs
        arr = state.store.get(row)
        if arr is not None:
            return arr[bits]
        fill = self._fill_bytes(row)
        values = (fill[bits >> 3] >> (bits & 7).astype(np.uint8)) & 1
        flips = state.flips.get(row)
        if flips is not None and len(flips):
            # flips is kept sorted, so membership is a searchsorted probe
            # (np.isin pays a large dispatch overhead per call).
            slot = np.minimum(np.searchsorted(flips, bits), len(flips) - 1)
            values = values ^ (flips[slot] == bits)
        return values.astype(np.uint8, copy=False)

    def _apply_row_flips(self, row: int, flipped: np.ndarray) -> None:
        """Record flipped bits for ``row``.  ``flipped`` must be sorted
        ascending (CSR cell slices already are) so first-time rows store
        it directly; merges re-sort."""
        state = self._cs
        arr = state.store.get(row)
        if arr is not None:
            arr[flipped] ^= 1
            return
        previous = state.flips.get(row)
        state.flips[row] = (
            flipped if previous is None
            else np.sort(np.concatenate([previous, flipped]))
        )
        state.instantiated[row] = True

    def row_bits(self, row: int) -> np.ndarray:
        self.geometry.check_row(row)
        state = self._cs
        fresh = not state.instantiated[row]
        bits = self._row_array(row)
        if fresh and sanit.sanitize_on:
            sanit.note("dram.bank", self, row=row)
        return bits

    def set_default_pattern(self, name: str) -> None:
        super().set_default_pattern(name)
        # Cached fill rows came from the previous pattern.
        self._cs.fill_cache.clear()

    # ------------------------------------------------------------------
    # Batched materialization
    # ------------------------------------------------------------------
    def _materialize_batch(
        self,
        vrows: np.ndarray,
        peaks: np.ndarray,
        aggs: np.ndarray,
        times: np.ndarray,
        cause: str,
    ) -> int:
        """Materialize a sequence of pending-flip windows in order.

        ``vrows``/``peaks``/``aggs``/``times`` are parallel arrays in
        reference materialization order; every ``peaks`` entry is > 0
        and ``aggs`` uses -1 for "no recorded aggressor".  Flips apply
        in window order, so later windows read data already disturbed
        by earlier ones — exactly the reference's sequential behavior.

        The common case (distinct victim rows, sanitizer off) runs as
        one array program over every window's candidate cells; repeated
        victims or sanitize mode fall back to the per-window loop.
        """
        if not sanit.sanitize_on and len(vrows) > 1:
            srt = np.sort(vrows)
            if not (srt[1:] == srt[:-1]).any():
                return self._materialize_vectorized(vrows, peaks, aggs,
                                                    times, cause)
        return self._materialize_sequential(vrows, peaks, aggs, times, cause)

    def _flip_metrics(self, cause: str):
        """Resolved ``(counter, histogram)`` for flip telemetry, or
        ``None`` when metrics are off.  Registry lookups hash a sorted
        label key, so the per-window loops resolve the series once per
        batch instead of once per flipping window."""
        if not telem.metrics_on:
            return None
        return (telem.counter("dram_bit_flips_total",
                              bank=self.index, cause=cause),
                telem.histogram("dram_flips_per_event", edges=_FLIP_BUCKETS))

    def _flip_row_now(self, row: int, peak: float, agg: int,
                      relief_floor: float) -> np.ndarray:
        """Bit indices of ``row`` that flip at ``peak`` against the
        *current* stored content (not yet applied)."""
        model = self.model
        # Content-independent prechecks: no threshold sits below the
        # profile floor, and no cell in the row sits below its min_hc —
        # either one above the peak means nothing can flip (and the
        # first avoids fetching the weak-cell block at all).
        if model.profile.hc_first_min * relief_floor > peak:
            return _EMPTY_BITS
        block = model.weak_cells_block(self.index, row)
        rel = row - block.start
        if block.min_hc[rel] * relief_floor > peak:
            return _EMPTY_BITS
        lo, hi = int(block.offsets[rel]), int(block.offsets[rel + 1])
        hc = block.hc_first[lo:hi]
        candidate = hc * relief_floor <= peak
        cbits = block.bits[lo:hi][candidate]
        victim_vals = self._row_values(row, cbits)
        agg_vals = self._row_values(agg, cbits) if agg >= 0 else None
        subset = WeakCellSet(
            bits=cbits,
            hc_first=hc[candidate],
            anti=block.anti[lo:hi][candidate],
            aggressor_sensitive=block.aggressor_sensitive[lo:hi][candidate],
        )
        mask = model.flip_mask_batch(subset, peak, victim_vals, agg_vals)
        return cbits[mask]

    def _materialize_sequential(
        self,
        vrows: np.ndarray,
        peaks: np.ndarray,
        aggs: np.ndarray,
        times: np.ndarray,
        cause: str,
    ) -> int:
        model = self.model
        state = self._cs
        sanitize = sanit.sanitize_on
        # Aggressor-sensitive relief normally *raises* thresholds; only
        # a relief factor below 1 could let hc_first > peak cells flip.
        relief_floor = min(1.0, model.profile.dpd_relief)
        metrics = self._flip_metrics(cause)
        tracing = telem.trace_on
        total = 0
        for i in range(len(vrows)):
            row = int(vrows[i])
            peak = float(peaks[i])
            agg = int(aggs[i])
            if sanitize:
                # Take the reference's exact path so instantiation and
                # shadow-digest notes happen at identical points.
                bits = self.row_bits(row)
                agg_bits = self.row_bits(agg) if agg >= 0 else None
                flipped = model.apply_flips(self.index, row, peak, bits, agg_bits)
            else:
                instantiated = state.instantiated
                instantiated[row] = True
                if agg >= 0:
                    instantiated[agg] = True
                flipped = self._flip_row_now(row, peak, agg, relief_floor)
                if len(flipped):
                    self._apply_row_flips(row, flipped)
            n_flips = len(flipped)
            if n_flips:
                if sanitize:
                    sanit.note("dram.bank", self, row=row)
                t = float(times[i])
                self.stats.record_flips(row, flipped, t, aggressor=agg,
                                        hammer=peak,
                                        pattern=self.default_pattern_name)
                if metrics:
                    metrics[0].inc(n_flips)
                    metrics[1].observe(n_flips)
                if tracing:
                    telem.trace("bit_flip", t=t, bank=self.index,
                                row=row, bits=n_flips, cause=cause)
                total += n_flips
        return total

    def _materialize_vectorized(
        self,
        vrows: np.ndarray,
        peaks: np.ndarray,
        aggs: np.ndarray,
        times: np.ndarray,
        cause: str,
    ) -> int:
        """One array program per weak-cell block over every window's
        candidate cells.

        Victim rows are distinct here, so windows can only interact
        through a *dominant aggressor* whose own row flipped earlier in
        the batch; gathers run optimistically against batch-start
        content and any window whose aggressor row got dirtied earlier
        re-evaluates sequentially (rare: aggressors are usually the
        hammered rows, which accumulate little pressure themselves).
        """
        model = self.model
        bank_index = self.index
        state = self._cs
        relief_floor = min(1.0, model.profile.dpd_relief)
        instantiated = state.instantiated
        instantiated[vrows] = True
        valid_agg = aggs >= 0
        if valid_agg.any():
            instantiated[aggs[valid_agg]] = True

        # Profile-floor precheck: a window whose peak sits below the
        # lowest threshold any cell can have flips nothing, reads
        # nothing, and invalidates nothing — drop it before touching
        # (or generating) weak-cell blocks.  Reference equivalence only
        # needs the instantiation marking above.
        floor = model.profile.hc_first_min * relief_floor
        if floor > 0:
            live = floor <= peaks
            if not live.all():
                if not live.any():
                    return 0
                vrows = vrows[live]
                peaks = peaks[live]
                aggs = aggs[live]
                times = times[live]

        starts = vrows - vrows % BLOCK_ROWS
        store, sflips = state.store, state.flips
        #: window index -> (bits, mask, chunk start, chunk end, flip count)
        chunks: Dict[int, tuple] = {}
        for start in sorted(set(starts.tolist())):
            block = model.weak_cells_block(bank_index, int(start))
            sel = np.nonzero(starts == start)[0]
            rel = vrows[sel] - start
            # The row's lowest threshold decides whether any candidate
            # cell exists at its peak; windows that can't flip need no
            # gather (and can't be invalidated either — the precheck is
            # content-independent).
            live = block.min_hc[rel] * relief_floor <= peaks[sel]
            sel = sel[live]
            if not len(sel):
                continue
            rel = rel[live]
            lo = block.offsets[rel]
            hi = block.offsets[rel + 1]
            lens = hi - lo
            total_cells = int(lens.sum())
            if total_cells == 0:
                continue
            cum = np.cumsum(lens)
            # Ragged gather: window j's cells occupy block CSR indices
            # [lo[j], hi[j]) — one shifted arange covers all windows.
            idx = np.arange(total_cells, dtype=np.int64) + np.repeat(
                lo - np.concatenate(([0], cum[:-1])), lens)
            hc = block.hc_first[idx]
            cell_peak = np.repeat(peaks[sel], lens)
            candidate = hc * relief_floor <= cell_peak
            cidx = idx[candidate]
            bits = block.bits[cidx]
            hc = hc[candidate]
            cell_peak = cell_peak[candidate]
            anti = block.anti[cidx]
            sens = block.aggressor_sensitive[cidx]
            win_id = np.repeat(np.arange(len(sel)), lens)[candidate]
            bounds = np.searchsorted(win_id, np.arange(len(sel) + 1))

            # Gather victim/aggressor values through one fill-byte
            # matrix; rows holding explicit storage get patched below.
            # Periodic patterns need one matrix row per fill class, not
            # per distinct row.
            wrows = vrows[sel]
            waggs = aggs[sel]
            wvalid = waggs >= 0
            period = getattr(self._default_pattern, "row_period", 0)
            if period:
                fill_mat = np.stack(
                    [self._fill_bytes(c) for c in range(period)])
                vcls = wrows % period
                acls = np.where(wvalid, waggs % period, 0)
            else:
                distinct = _sorted_unique(
                    np.concatenate([wrows, waggs[wvalid]]))
                fill_mat = np.empty(
                    (len(distinct), self.geometry.row_bytes), dtype=np.uint8)
                for k, row in enumerate(distinct.tolist()):
                    fill_mat[k] = self._fill_bytes(row)
                vcls = np.searchsorted(distinct, wrows)
                acls = np.searchsorted(
                    distinct, np.where(wvalid, waggs, distinct[0]))
            chunk_lens = np.diff(bounds)
            byte_idx = bits >> 3
            shift = (bits & 7).astype(np.uint8)
            victim_vals = (fill_mat[np.repeat(vcls, chunk_lens), byte_idx]
                           >> shift) & 1
            agg_vals = (fill_mat[np.repeat(acls, chunk_lens), byte_idx]
                        >> shift) & 1
            agg_valid = np.repeat(wvalid, chunk_lens)
            if store or sflips:
                for j in range(len(sel)):
                    s, e = int(bounds[j]), int(bounds[j + 1])
                    if s == e:
                        continue
                    row = int(wrows[j])
                    if row in store or row in sflips:
                        victim_vals[s:e] = self._row_values(row, bits[s:e])
                    agg = int(waggs[j])
                    if agg >= 0 and (agg in store or agg in sflips):
                        agg_vals[s:e] = self._row_values(agg, bits[s:e])

            mask = model.flip_mask_batch(
                WeakCellSet(bits=bits, hc_first=hc, anti=anti,
                            aggressor_sensitive=sens),
                cell_peak, victim_vals, agg_vals, agg_valid)
            flip_cum = np.concatenate(([0], np.cumsum(mask)))
            counts = flip_cum[bounds[1:]] - flip_cum[bounds[:-1]]
            for j in range(len(sel)):
                chunks[int(sel[j])] = (bits, mask, int(bounds[j]),
                                       int(bounds[j + 1]), int(counts[j]))

        if not chunks:
            return 0
        metrics = self._flip_metrics(cause)
        tracing = telem.trace_on

        # Windows only interact when some window's aggressor is another
        # window's victim (victims are distinct here); without that, no
        # flip can invalidate a later gather, so application skips the
        # dirty tracking and assembles the flip log in one batch.
        svr = np.sort(vrows)
        loc = np.minimum(np.searchsorted(svr, aggs), len(svr) - 1)
        if not (svr[loc] == aggs).any():
            rows_l: List[int] = []
            times_l: List[float] = []
            counts_l: List[int] = []
            flips_l: List[np.ndarray] = []
            aggs_l: List[int] = []
            peaks_l: List[float] = []
            total = 0
            for i in sorted(chunks):
                bits, mask, s, e, count = chunks[i]
                if not count:
                    continue
                flipped = bits[s:e][mask[s:e]]
                row = int(vrows[i])
                self._apply_row_flips(row, flipped)
                t = float(times[i])
                rows_l.append(row)
                times_l.append(t)
                counts_l.append(count)
                flips_l.append(flipped)
                aggs_l.append(int(aggs[i]))
                peaks_l.append(float(peaks[i]))
                if metrics:
                    metrics[1].observe(count)
                if tracing:
                    telem.trace("bit_flip", t=t, bank=self.index,
                                row=row, bits=count, cause=cause)
                total += count
            if total:
                if metrics:
                    metrics[0].inc(total)
                self.stats.record_flips_batch(
                    np.repeat(np.asarray(rows_l, dtype=np.int64), counts_l),
                    np.concatenate(flips_l),
                    np.repeat(np.asarray(times_l), counts_l),
                    aggressors=np.repeat(
                        np.asarray(aggs_l, dtype=np.int64), counts_l),
                    hammers=np.repeat(np.asarray(peaks_l), counts_l),
                    pattern=self.default_pattern_name)
            return total

        # Apply in window order; re-evaluate any window whose inputs an
        # earlier window's flips invalidated.
        record = self.stats.record_flips
        dirty: set = set()
        total = 0
        for i in sorted(chunks):
            bits, mask, s, e, count = chunks[i]
            row = int(vrows[i])
            agg = int(aggs[i])
            if row in dirty or (agg >= 0 and agg in dirty):
                flipped = self._flip_row_now(row, float(peaks[i]), agg,
                                             relief_floor)
            elif count:
                flipped = bits[s:e][mask[s:e]]
            else:
                continue
            n_flips = len(flipped)
            if not n_flips:
                continue
            self._apply_row_flips(row, flipped)
            dirty.add(row)
            t = float(times[i])
            record(row, flipped, t, aggressor=agg, hammer=float(peaks[i]),
                   pattern=self.default_pattern_name)
            if metrics:
                metrics[0].inc(n_flips)
                metrics[1].observe(n_flips)
            if tracing:
                telem.trace("bit_flip", t=t, bank=self.index,
                            row=row, bits=n_flips, cause=cause)
            total += n_flips
        return total

    # ------------------------------------------------------------------
    # Batched refresh/settle
    # ------------------------------------------------------------------
    def refresh_all(self, time: float = 0.0) -> int:
        with telem.span("dram.refresh_all"):
            state = self._cs
            rows = list(state.touch_order)
            self.stats.refreshes += len(rows)
            if rows and telem.metrics_on:
                telem.counter("dram_refreshes_total", bank=self.index).inc(len(rows))
            if telem.trace_on:
                for row in rows:
                    telem.trace("refresh", t=time, bank=self.index, row=row)
            if sanit.sanitize_on:
                for row in rows:
                    sanit.check("dram.bank", self, row=row)
            if not rows:
                # Epoch advances per bank-wide REF even with nothing to
                # refresh — the reference loop body is simply empty.
                self.stats.refresh_epoch += 1
                return 0
            row_arr = np.asarray(rows, dtype=np.int64)
            peaks = state.peak[row_arr]
            live = peaks > 0
            flips = 0
            if live.any():
                victims = row_arr[live]
                flips = self._materialize_batch(
                    victims, peaks[live], state.last_agg[victims],
                    np.full(len(victims), float(time)), "refresh")
            state.pressure[row_arr] = 0.0
            state.peak[row_arr] = 0.0
            self.stats.refresh_epoch += 1
            return flips

    def refresh_rows(self, rows: Sequence[int], time: float = 0.0) -> int:
        state = self._cs
        row_arr = np.asarray(list(rows), dtype=np.int64)
        if len(row_arr) == 0:
            return 0
        if len(row_arr) and (row_arr.min() < 0 or row_arr.max() >= state.rows):
            bad = row_arr[(row_arr < 0) | (row_arr >= state.rows)][0]
            self.geometry.check_row(int(bad))
        self.stats.refreshes += len(row_arr)
        if telem.metrics_on:
            telem.counter("dram_refreshes_total", bank=self.index).inc(len(row_arr))
        if telem.trace_on:
            for row in row_arr:
                telem.trace("refresh", t=time, bank=self.index, row=int(row))
        if sanit.sanitize_on:
            for row in row_arr:
                sanit.check("dram.bank", self, row=int(row))
        # A row repeated in one batch sees zeroed state on its second
        # refresh in the reference — only the first occurrence acts.
        unique = row_arr[_first_occurrence(row_arr)]
        peaks = state.peak[unique]
        live = peaks > 0
        flips = 0
        if live.any():
            victims = unique[live]
            flips = self._materialize_batch(
                victims, peaks[live], state.last_agg[victims],
                np.full(len(victims), float(time)), "refresh")
        # Undisturbed rows are a no-op in the reference (no key
        # insertion); their array slots already hold zero.
        state.pressure[unique] = 0.0
        state.peak[unique] = 0.0
        return flips

    def settle(self, time: float = 0.0) -> int:
        with telem.span("dram.settle"):
            state = self._cs
            flips = 0
            if state.touch_order:
                row_arr = np.asarray(state.touch_order, dtype=np.int64)
                peaks = state.peak[row_arr]
                live = peaks > 0
                if live.any():
                    victims = row_arr[live]
                    flips = self._materialize_batch(
                        victims, peaks[live], state.last_agg[victims],
                        np.full(len(victims), float(time)), "settle")
                    state.peak[victims] = 0.0
            if telem.metrics_on:
                mask = state._instantiated
                telem.histogram("dram_rows_touched").observe(
                    0 if mask is None else int(mask.sum()))
            return flips

    # ------------------------------------------------------------------
    # Batched command-stream execution
    # ------------------------------------------------------------------
    def execute(self, stream: CommandStream) -> int:
        with telem.span("dram.execute"):
            before = self.stats.flips_materialized
            act_counter = (telem.counter("dram_activations_total",
                                         bank=self.index)
                           if telem.metrics_on else None)
            collector = phys.get_collector() if phys.physics_on else None
            act_rows: List[int] = []
            act_counts: List[int] = []
            act_times: List[float] = []
            for cmd in stream:
                op = cmd.op
                if op == OP_ACT:
                    self.geometry.check_row(cmd.row)
                    if cmd.count <= 0:
                        continue
                    if sanit.sanitize_on:
                        sanit.check("dram.bank", self, row=cmd.row)
                    self.stats.activations += cmd.count
                    if act_counter is not None:
                        act_counter.inc(cmd.count)
                    if telem.trace_on:
                        telem.trace("activate", t=cmd.time, bank=self.index,
                                    row=cmd.row, count=cmd.count)
                    if collector is not None:
                        collector.record_activation(self.index, cmd.row,
                                                    cmd.count)
                    act_rows.append(cmd.row)
                    act_counts.append(cmd.count)
                    act_times.append(cmd.time)
                    self.open_row = cmd.row
                elif op == OP_PRE:
                    self.open_row = None
                else:
                    if act_rows:
                        self._flush_acts(act_rows, act_counts, act_times)
                        act_rows, act_counts, act_times = [], [], []
                    if op == OP_REF_ROW:
                        self.refresh_row(cmd.row, cmd.time)
                    elif op == OP_REF_ALL:
                        self.refresh_all(cmd.time)
                    elif op == OP_SETTLE:
                        self.settle(cmd.time)
                    elif op == OP_WRITE:
                        self.write(cmd.row, stream.payload(cmd.index), cmd.time)
                    elif op == OP_READ:
                        self.read(cmd.row, cmd.time)
                    else:  # pragma: no cover - builder can't produce this
                        raise ValueError(f"unknown stream opcode {op}")
            if act_rows:
                self._flush_acts(act_rows, act_counts, act_times)
            return self.stats.flips_materialized - before

    def _flush_acts(self, rows: List[int], counts: List[int],
                    times: List[float]) -> None:
        """Apply one uninterrupted ACT run as an array program."""
        state = self._cs
        n_rows_total = self.geometry.rows
        n = len(rows)
        act_row = np.asarray(rows, dtype=np.int64)
        act_cnt = np.asarray(counts, dtype=np.float64)
        act_time = np.asarray(times, dtype=np.float64)
        d2 = self.model.profile.distance2_weight

        # --- touch bookkeeping: reference key-insertion order is
        # (row, row-1, row+1[, row-2, row+2]) per ACT, new keys only ---
        if d2 > 0:
            interleaved = np.stack(
                [act_row, act_row - 1, act_row + 1, act_row - 2, act_row + 2],
                axis=1).reshape(-1)
        else:
            interleaved = np.stack(
                [act_row, act_row - 1, act_row + 1], axis=1).reshape(-1)
        interleaved = interleaved[(interleaved >= 0) & (interleaved < n_rows_total)]
        fresh = interleaved[~state.touched[interleaved]]
        if len(fresh):
            new_rows = fresh[_first_occurrence(fresh)]
            state.touched[new_rows] = True
            state.touch_order.extend(new_rows.tolist())

        # --- event table: one reset per ACT plus its neighbor bumps ---
        pos = np.arange(n, dtype=np.int64)
        zero = np.zeros(n)
        none_agg = np.full(n, -1, dtype=np.int64)
        if d2 > 0:
            ev_row = np.concatenate(
                [act_row, act_row - 1, act_row + 1, act_row - 2, act_row + 2])
            ev_w = np.concatenate([zero, act_cnt, act_cnt, d2 * act_cnt, d2 * act_cnt])
            ev_agg = np.concatenate([none_agg, act_row, act_row, none_agg, none_agg])
            ev_pos = np.concatenate([pos] * 5)
            groups = 5
        else:
            ev_row = np.concatenate([act_row, act_row - 1, act_row + 1])
            ev_w = np.concatenate([zero, act_cnt, act_cnt])
            ev_agg = np.concatenate([none_agg, act_row, act_row])
            ev_pos = np.concatenate([pos] * 3)
            groups = 3
        ev_reset = np.zeros(groups * n, dtype=bool)
        ev_reset[:n] = True
        ev_d1 = np.zeros(groups * n, dtype=bool)
        ev_d1[n:3 * n] = True
        in_bounds = (ev_row >= 0) & (ev_row < n_rows_total)
        ev_row = ev_row[in_bounds]
        ev_w = ev_w[in_bounds]
        ev_agg = ev_agg[in_bounds]
        ev_pos = ev_pos[in_bounds]
        ev_reset = ev_reset[in_bounds]
        ev_d1 = ev_d1[in_bounds]

        # --- sort by (row, position); (row, pos) pairs are unique ---
        order = np.lexsort((ev_pos, ev_row))
        r_s = ev_row[order]
        w_s = ev_w[order]
        agg_s = ev_agg[order]
        pos_s = ev_pos[order]
        reset_s = ev_reset[order]
        d1_s = ev_d1[order]
        m = len(r_s)
        idx = np.arange(m, dtype=np.int64)
        newrow = np.concatenate(([True], r_s[1:] != r_s[:-1]))
        seg_start = np.maximum.accumulate(np.where(newrow, idx, 0))
        cum = np.cumsum(w_s)
        base = cum[seg_start] - w_s[seg_start]  # cumsum before each segment

        # Segmented forward fills.  ``shift`` strictly dominates across
        # segments, so one maximum.accumulate carries "index of the last
        # reset / d1 bump so far" without leaking between rows.
        seg_id = np.cumsum(newrow) - 1
        shift = seg_id * (m + 1)
        filled_reset = np.maximum.accumulate(
            np.where(reset_s, shift + idx + 1, shift))
        filled_d1 = np.maximum.accumulate(
            np.where(d1_s, shift + idx + 1, shift))
        before_reset = np.concatenate(([0], filled_reset[:-1])) - shift - 1
        before_d1 = np.concatenate(([0], filled_d1[:-1])) - shift - 1
        before_reset[newrow] = -1  # fills from other segments are invalid
        before_d1[newrow] = -1

        # --- materialize at each reset, in command order ---
        reset_idx = np.nonzero(reset_s)[0]
        if len(reset_idx):
            reset_idx = reset_idx[np.argsort(pos_s[reset_idx], kind="stable")]
            reset_rows = r_s[reset_idx]
            prev_reset = before_reset[reset_idx]
            window = cum[reset_idx] - np.where(
                prev_reset >= 0, cum[np.maximum(prev_reset, 0)], base[reset_idx])
            first_window = prev_reset < 0
            p0 = state.pressure[reset_rows]
            k0 = state.peak[reset_rows]
            # Bumps are non-negative, so the in-window running peak is the
            # window total; an empty first window keeps the prior peak.
            peak_at = np.where(
                first_window,
                np.where(window > 0, np.maximum(k0, p0 + window), k0),
                window)
            prev_d1 = before_d1[reset_idx]
            agg_at = np.where(prev_d1 >= 0,
                              agg_s[np.maximum(prev_d1, 0)],
                              state.last_agg[reset_rows])
            live = peak_at > 0
            if live.any():
                self._materialize_batch(
                    reset_rows[live], peak_at[live], agg_at[live],
                    act_time[pos_s[reset_idx]][live], "activate")

        # --- final per-row state at end of run ---
        seg_end = np.nonzero(np.concatenate((newrow[1:], [True])))[0]
        end_rows = r_s[seg_end]
        has_reset = filled_reset[seg_end] > shift[seg_end]
        last_reset = filled_reset[seg_end] - shift[seg_end] - 1
        tail = cum[seg_end] - np.where(
            has_reset, cum[np.maximum(last_reset, 0)], base[seg_end])
        p0_end = state.pressure[end_rows]
        k0_end = state.peak[end_rows]
        state.pressure[end_rows] = np.where(has_reset, tail, p0_end + tail)
        state.peak[end_rows] = np.where(
            has_reset, tail, np.maximum(k0_end, p0_end + tail))
        has_d1 = filled_d1[seg_end] > shift[seg_end]
        last_d1 = filled_d1[seg_end] - shift[seg_end] - 1
        state.last_agg[end_rows] = np.where(
            has_d1, agg_s[np.maximum(last_d1, 0)], state.last_agg[end_rows])
