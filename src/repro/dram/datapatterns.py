"""Data patterns used by DRAM disturbance and retention testing.

The ISCA 2014 study reports strong data-pattern dependence of
RowHammer: the number of observed flips varies by orders of magnitude
between *Solid*, *RowStripe*, *ColStripe*, *Checkered*, and *Random*
fills.  A pattern here is a function from (row index, row size) to the
byte content of that row, so stripes can alternate per row.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.utils.rng import derive_rng

PatternFn = Callable[[int, int], np.ndarray]

#: Canonical pattern names, in the order the original study lists them.
PATTERN_NAMES = ("solid0", "solid1", "rowstripe", "rowstripe_inv", "colstripe", "checkered", "random")


def _solid(value: int) -> PatternFn:
    def fill(row: int, row_bytes: int) -> np.ndarray:
        return np.full(row_bytes, value, dtype=np.uint8)

    fill.row_period = 1
    return fill


def _rowstripe(even_value: int, odd_value: int) -> PatternFn:
    def fill(row: int, row_bytes: int) -> np.ndarray:
        value = even_value if row % 2 == 0 else odd_value
        return np.full(row_bytes, value, dtype=np.uint8)

    fill.row_period = 2
    return fill


def _colstripe(row: int, row_bytes: int) -> np.ndarray:
    # 0b01010101 alternates bit columns within every byte.
    return np.full(row_bytes, 0x55, dtype=np.uint8)


def _checkered(row: int, row_bytes: int) -> np.ndarray:
    value = 0x55 if row % 2 == 0 else 0xAA
    return np.full(row_bytes, value, dtype=np.uint8)


#: Named patterns repeat with a short row period (``fill(row) ==
#: fill(row % row_period)``); engines use this to share fill buffers
#: across rows.  Aperiodic patterns (``random``) carry no attribute.
_colstripe.row_period = 1
_checkered.row_period = 2


def make_random_pattern(seed: int) -> PatternFn:
    """Return a deterministic per-row random pattern bound to ``seed``."""

    def fill(row: int, row_bytes: int) -> np.ndarray:
        return derive_rng(seed, "pattern", row).integers(0, 256, size=row_bytes, dtype=np.uint8)

    return fill


#: Registry of named data patterns (``random`` uses a fixed seed; build
#: per-experiment random patterns with :func:`make_random_pattern`).
PATTERNS: Dict[str, PatternFn] = {
    "solid0": _solid(0x00),
    "solid1": _solid(0xFF),
    "rowstripe": _rowstripe(0xFF, 0x00),
    "rowstripe_inv": _rowstripe(0x00, 0xFF),
    "colstripe": _colstripe,
    "checkered": _checkered,
    "random": make_random_pattern(0xC0FFEE),
}


def get_pattern(name: str) -> PatternFn:
    """Look up a pattern by name, raising ``KeyError`` with the options listed."""
    try:
        return PATTERNS[name]
    except KeyError:
        raise KeyError(f"unknown pattern {name!r}; options: {sorted(PATTERNS)}") from None


def pattern_bits(name: str, row: int, row_bytes: int) -> np.ndarray:
    """Return the pattern for ``row`` expanded to a bit array (LSB-first per byte)."""
    data = get_pattern(name)(row, row_bytes)
    return np.unpackbits(data, bitorder="little")
