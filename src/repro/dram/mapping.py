"""Physical-address to DRAM-coordinate mapping.

The memory controller decomposes a physical byte address into
(channel, rank, bank, row, column) coordinates.  Two schemes are
provided:

* ``row-interleaved`` (``RoBaCo``): consecutive addresses fill a row,
  then move to the next bank — maximizes row-buffer locality.
* ``bank-interleaved`` (``RoCoBa``): consecutive cache lines rotate
  across banks — maximizes bank-level parallelism.

The mapping is what translates a *software* page into *device* rows:
the RowHammer security argument rests on different OS pages landing in
physically adjacent device rows, which this module makes explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import DramGeometry


@dataclass(frozen=True)
class DramCoordinate:
    """A fully decoded DRAM location."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int


class AddressMapping:
    """Bijective physical-address <-> DRAM-coordinate mapping.

    Args:
        geometry: module organization.
        scheme: ``"row-interleaved"`` or ``"bank-interleaved"``.
    """

    SCHEMES = ("row-interleaved", "bank-interleaved")

    def __init__(self, geometry: DramGeometry, scheme: str = "row-interleaved") -> None:
        if scheme not in self.SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; expected one of {self.SCHEMES}")
        self.geometry = geometry
        self.scheme = scheme

    @property
    def capacity_bytes(self) -> int:
        """Addressable bytes."""
        return self.geometry.capacity_bytes

    def decode(self, address: int) -> DramCoordinate:
        """Decode a physical byte address into DRAM coordinates."""
        geo = self.geometry
        if not 0 <= address < self.capacity_bytes:
            raise IndexError(f"address {address:#x} out of range")
        column = address % geo.row_bytes
        upper = address // geo.row_bytes
        if self.scheme == "row-interleaved":
            bank = upper % geo.banks
            upper //= geo.banks
            row = upper % geo.rows
            upper //= geo.rows
        else:  # bank-interleaved: bank bits above column bits rotate fastest
            row = upper % geo.rows
            upper //= geo.rows
            bank = upper % geo.banks
            upper //= geo.banks
        rank = upper % geo.ranks
        upper //= geo.ranks
        channel = upper
        return DramCoordinate(channel=channel, rank=rank, bank=bank, row=row, column=column)

    def encode(self, coord: DramCoordinate) -> int:
        """Encode DRAM coordinates back into a physical byte address."""
        geo = self.geometry
        geo.check_bank(coord.bank)
        geo.check_row(coord.row)
        if not 0 <= coord.column < geo.row_bytes:
            raise IndexError(f"column {coord.column} out of range")
        if not 0 <= coord.rank < geo.ranks:
            raise IndexError(f"rank {coord.rank} out of range")
        if not 0 <= coord.channel < geo.channels:
            raise IndexError(f"channel {coord.channel} out of range")
        if self.scheme == "row-interleaved":
            upper = ((coord.channel * geo.ranks + coord.rank) * geo.rows + coord.row) * geo.banks + coord.bank
        else:
            upper = ((coord.channel * geo.ranks + coord.rank) * geo.banks + coord.bank) * geo.rows + coord.row
        return upper * geo.row_bytes + coord.column

    def row_address(self, bank: int, row: int, channel: int = 0, rank: int = 0) -> int:
        """Physical address of the first byte of ``(bank, row)``."""
        return self.encode(DramCoordinate(channel=channel, rank=rank, bank=bank, row=row, column=0))

    def page_rows(self, address: int, page_bytes: int = 4096) -> set:
        """Return the set of (bank, row) pairs an OS page at ``address`` touches.

        Demonstrates the mapping fact underlying the security argument:
        distinct pages map to distinct rows, yet adjacent device rows may
        belong to pages of *different* owners.
        """
        rows = set()
        for offset in range(0, page_bytes, self.geometry.row_bytes if self.geometry.row_bytes < page_bytes else page_bytes):
            coord = self.decode(address + offset)
            rows.add((coord.bank, coord.row))
        return rows
