"""DRAM substrate: geometry, timing, address mapping, disturbance model,
and the two simulation engines (per-command reference and columnar)."""

from repro.dram.bank import ENGINES, BankStats, DramBank, default_engine
from repro.dram.columnar import ColumnarDramBank
from repro.dram.datapatterns import PATTERN_NAMES, PATTERNS, get_pattern, make_random_pattern, pattern_bits
from repro.dram.disturbance import (
    INVULNERABLE,
    DisturbanceModel,
    VulnerabilityProfile,
    WeakCellBlock,
    WeakCellSet,
)
from repro.dram.stream import Command, CommandStream
from repro.dram.geometry import DDR3_2GB, DDR3_4GB, TINY_GEOMETRY, DramGeometry
from repro.dram.latency import SPEC_TRCD_NS, LatencyMarginModel, LatencyMarginParams, aldram_study
from repro.dram.mapping import AddressMapping, DramCoordinate
from repro.dram.module import DramModule
from repro.dram.remap import RowRemapper
from repro.dram.timing import DDR3_1066, DDR3_1333, DDR4_2400, TimingParams
from repro.dram.vintage import MANUFACTURERS, VINTAGE_CURVES, VintageCurve, hc_first_min_for_date, profile_for

__all__ = [
    "BankStats",
    "Command",
    "CommandStream",
    "ColumnarDramBank",
    "DramBank",
    "ENGINES",
    "default_engine",
    "WeakCellBlock",
    "PATTERN_NAMES",
    "PATTERNS",
    "get_pattern",
    "make_random_pattern",
    "pattern_bits",
    "INVULNERABLE",
    "DisturbanceModel",
    "VulnerabilityProfile",
    "WeakCellSet",
    "DDR3_2GB",
    "DDR3_4GB",
    "TINY_GEOMETRY",
    "DramGeometry",
    "SPEC_TRCD_NS",
    "LatencyMarginModel",
    "LatencyMarginParams",
    "aldram_study",
    "AddressMapping",
    "DramCoordinate",
    "DramModule",
    "RowRemapper",
    "DDR3_1066",
    "DDR4_2400",
    "DDR3_1333",
    "TimingParams",
    "MANUFACTURERS",
    "VINTAGE_CURVES",
    "VintageCurve",
    "hc_first_min_for_date",
    "profile_for",
]
