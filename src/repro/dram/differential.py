"""Differential oracle: columnar engine vs per-command reference.

The columnar engine re-derives the bank semantics as array programs;
this harness is the proof obligation that came with it.  A seeded
random :class:`~repro.dram.stream.CommandStream` (weighted toward the
shapes that stress the batched math: double-sided bursts, repeated
aggressors, distance-2-heavy profiles, interleaved refreshes and
writes) replays through both engines, and the resulting observations
must agree:

* **exactly** — flip logs, ``BankStats`` counters, sanitizer shadow
  digests, stored row data, instantiated-row set, touch order, open
  row, and the ``execute`` return value;
* **to float tolerance** — per-row pressure/peak, where the batched
  prefix-sum windows legitimately reassociate the reference's
  per-command additions (ulp-level differences that cannot move a
  threshold crossing except on a measure-zero set).

``repro.dram.differential`` is also importable from tests and CI: the
property suite in ``tests/test_differential.py`` runs 100+ seeds, and
the ``differential`` CI job runs it under ``REPRO_SANITIZE=full`` so
the shadow-digest machinery is part of the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dram.bank import DramBank
from repro.dram.disturbance import DisturbanceModel, VulnerabilityProfile
from repro.dram.geometry import DramGeometry
from repro.dram.stream import CommandStream
from repro.utils.rng import derive_rng

__all__ = [
    "DEFAULT_PROFILES",
    "EngineObservation",
    "diff_observations",
    "observe",
    "random_stream",
    "replay_stream",
    "run_differential",
]

#: Geometry small enough for hundreds of replays, large enough for
#: multi-block weak-cell maps and off-edge hammering.
DEFAULT_GEOMETRY = DramGeometry(banks=1, rows=256, row_bytes=128)

#: Vulnerability profiles the suite cycles through: a mid-density
#: distance-2-free module, a distance-2-heavy one, an aggressor-
#: sensitive-saturated one, and an invulnerable control.
DEFAULT_PROFILES: Tuple[VulnerabilityProfile, ...] = (
    VulnerabilityProfile(
        weak_cell_density=0.05, hc_first_median=4_000.0,
        hc_first_min=800.0, hc_first_sigma=0.5, distance2_weight=0.0),
    VulnerabilityProfile(
        weak_cell_density=0.08, hc_first_median=3_000.0,
        hc_first_min=500.0, hc_first_sigma=0.6, distance2_weight=0.25),
    VulnerabilityProfile(
        weak_cell_density=0.05, hc_first_median=5_000.0,
        hc_first_min=1_000.0, aggressor_sensitive_fraction=0.9,
        dpd_relief=2.0, distance2_weight=0.02),
    VulnerabilityProfile(weak_cell_density=0.0),
)

_PATTERNS = ("solid1", "rowstripe", "checkered", "random")


@dataclass
class EngineObservation:
    """Everything the equivalence contract compares, from one engine."""

    engine: str
    returned: int
    flip_log: List[tuple]
    stats: Dict[str, int]
    touch_order: List[int]
    pressure: Dict[int, float]
    peak: Dict[int, float]
    last_aggressor: Dict[int, Optional[int]]
    open_row: Optional[int]
    touched_rows: List[int]
    row_data: Dict[int, np.ndarray]
    digests: Dict[int, int] = field(default_factory=dict)


def random_stream(
    seed: int,
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    n_commands: int = 60,
    max_count: int = 6_000,
) -> CommandStream:
    """A seeded random command stream biased toward hammering shapes."""
    rng = derive_rng(seed, "diffstream")
    rows = geometry.rows
    stream = CommandStream()
    time = 0.0
    # A few anchor victims so double-sided pressure actually accumulates
    # on the same rows across the stream.
    victims = rng.integers(2, rows - 2, size=4)
    for _ in range(n_commands):
        time += float(rng.integers(1, 50))
        kind = rng.random()
        if kind < 0.45:
            # Double-sided burst on an anchor victim.
            victim = int(victims[rng.integers(len(victims))])
            count = int(rng.integers(1, max_count))
            stream.act(victim - 1, count, time)
            stream.act(victim + 1, count, time)
        elif kind < 0.62:
            # Single aggressor, possibly at the device edge.
            row = int(rng.integers(0, rows))
            stream.act(row, int(rng.integers(1, max_count)), time)
        elif kind < 0.70:
            stream.pre(time)
        elif kind < 0.78:
            stream.ref_row(int(rng.integers(0, rows)), time)
        elif kind < 0.84:
            stream.ref_all(time)
        elif kind < 0.90:
            stream.settle(time)
        elif kind < 0.96:
            bits = rng.integers(0, 2, size=geometry.row_bits).astype(np.uint8)
            stream.write(int(rng.integers(0, rows)), bits, time)
        else:
            stream.read(int(rng.integers(0, rows)), time)
    stream.settle(time + 1.0)
    return stream


def observe(bank: DramBank, returned: int) -> EngineObservation:
    """Snapshot one bank into the comparable observation form."""
    touch_order = list(bank._peak)
    stats = bank.stats
    return EngineObservation(
        engine=bank.engine,
        returned=returned,
        flip_log=list(stats.flip_log),
        stats={
            "activations": stats.activations,
            "refreshes": stats.refreshes,
            "reads": stats.reads,
            "writes": stats.writes,
            "flips_materialized": stats.flips_materialized,
            "flips_dropped": stats.flips_dropped,
            "refresh_epoch": stats.refresh_epoch,
        },
        touch_order=touch_order,
        pressure={row: bank._pressure.get(row, 0.0) for row in touch_order},
        peak={row: bank._peak.get(row, 0.0) for row in touch_order},
        last_aggressor={row: bank._last_aggressor.get(row)
                        for row in touch_order},
        open_row=bank.open_row,
        touched_rows=bank.touched_rows(),
        row_data={row: bank.row_bits(row).copy() for row in bank.touched_rows()},
        digests=dict(bank.__dict__.get("_sanit_digest") or {}),
    )


def replay_stream(
    stream: CommandStream,
    engine: str,
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    profile: VulnerabilityProfile = DEFAULT_PROFILES[0],
    seed: int = 0,
    pattern: str = "solid1",
) -> EngineObservation:
    """Run ``stream`` on a fresh bank of the given engine and observe it."""
    model = DisturbanceModel(geometry, profile, seed)
    bank = DramBank(geometry, model, 0, default_pattern=pattern, engine=engine)
    returned = bank.execute(stream)
    return observe(bank, returned)


def diff_observations(
    reference: EngineObservation,
    candidate: EngineObservation,
    float_rtol: float = 1e-9,
    float_atol: float = 1e-6,
) -> List[str]:
    """Compare two observations; return human-readable mismatches."""
    problems: List[str] = []

    def exact(name: str, a, b) -> None:
        if a != b:
            problems.append(f"{name}: reference={a!r} vs candidate={b!r}")

    exact("returned flips", reference.returned, candidate.returned)
    exact("stats", reference.stats, candidate.stats)
    exact("open_row", reference.open_row, candidate.open_row)
    exact("touch_order", reference.touch_order, candidate.touch_order)
    exact("touched_rows", reference.touched_rows, candidate.touched_rows)
    exact("last_aggressor", reference.last_aggressor, candidate.last_aggressor)
    exact("shadow digests", reference.digests, candidate.digests)
    # Flip-log entries carry provenance: (row, bit, time, aggressor,
    # hammer, pattern, epoch).  Every field must match exactly except
    # the hammer pressure, which the columnar engine accumulates in a
    # different association order and so may differ by ulps — it gets
    # the same float tolerance as the pressure/peak maps.
    def entries_match(a: tuple, b: tuple) -> bool:
        if len(a) != len(b):
            return False
        if len(a) >= 7:
            return (a[:4] == b[:4] and a[5:] == b[5:]
                    and bool(np.isclose(a[4], b[4],
                                        rtol=float_rtol, atol=float_atol)))
        return a == b

    if (len(reference.flip_log) != len(candidate.flip_log)
            or not all(entries_match(a, b) for a, b in
                       zip(reference.flip_log, candidate.flip_log))):
        n_ref, n_can = len(reference.flip_log), len(candidate.flip_log)
        detail = f"{n_ref} vs {n_can} entries"
        for i, (a, b) in enumerate(zip(reference.flip_log, candidate.flip_log)):
            if not entries_match(a, b):
                detail += f"; first divergence at {i}: {a} vs {b}"
                break
        problems.append(f"flip_log: {detail}")
    if sorted(reference.row_data) != sorted(candidate.row_data):
        problems.append(
            f"row_data keys: {sorted(reference.row_data)} vs "
            f"{sorted(candidate.row_data)}")
    else:
        for row, bits in reference.row_data.items():
            if not np.array_equal(bits, candidate.row_data[row]):
                diff = int(np.count_nonzero(bits != candidate.row_data[row]))
                problems.append(f"row_data[{row}]: {diff} differing bits")
    for name, ref_map, can_map in (
        ("pressure", reference.pressure, candidate.pressure),
        ("peak", reference.peak, candidate.peak),
    ):
        for row, value in ref_map.items():
            other = can_map.get(row)
            if other is None or not np.isclose(
                    value, other, rtol=float_rtol, atol=float_atol):
                problems.append(
                    f"{name}[{row}]: reference={value!r} vs candidate={other!r}")
    return problems


def run_differential(
    seed: int,
    geometry: DramGeometry = DEFAULT_GEOMETRY,
    profile: Optional[VulnerabilityProfile] = None,
    pattern: Optional[str] = None,
    n_commands: int = 60,
) -> Dict[str, object]:
    """One oracle round: random stream, both engines, full comparison.

    Profile and pattern default to a seed-derived pick from the
    built-in pools so a plain seed sweep covers the matrix.
    """
    if profile is None:
        profile = DEFAULT_PROFILES[seed % len(DEFAULT_PROFILES)]
    if pattern is None:
        pattern = _PATTERNS[(seed // len(DEFAULT_PROFILES)) % len(_PATTERNS)]
    stream = random_stream(seed, geometry, n_commands=n_commands)
    reference = replay_stream(stream, "reference", geometry, profile, seed, pattern)
    candidate = replay_stream(stream, "columnar", geometry, profile, seed, pattern)
    problems = diff_observations(reference, candidate)
    return {
        "seed": seed,
        "pattern": pattern,
        "profile_density": profile.weak_cell_density,
        "commands": len(stream),
        "flips": reference.stats["flips_materialized"],
        "ok": not problems,
        "mismatches": problems,
    }
