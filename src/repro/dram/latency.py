"""Access-latency margins and adaptive-latency DRAM (AL-DRAM-style).

§II-C's closing argument: an intelligent, configurable memory
controller can exploit device knowledge to fix reliability problems
*and* recover performance — citing the adaptive-latency line of work
([63, 65]): DRAM timing specs carry a worst-case guardband, and most
modules/cells can be operated several nanoseconds faster once their
actual margins are profiled.

Model: each cell requires a minimum tRCD (charge-restore time) drawn
from a module-dependent distribution with a weak slow tail.  Operating
below a cell's requirement corrupts its accesses.  The intelligent
controller profiles the module and picks the fastest tRCD whose error
rate is below a target; the speedup over the spec value is the
AL-DRAM benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive, check_probability

#: JEDEC spec tRCD for the simulated speed grade (ns).
SPEC_TRCD_NS = 13.5


@dataclass(frozen=True)
class LatencyMarginParams:
    """Distribution of per-cell minimum tRCD for one module class.

    Attributes:
        mean_ns: typical cell requirement.
        sigma_ns: gaussian spread.
        tail_fraction: fraction of slow-tail cells.
        tail_extra_ns: extra requirement of tail cells (uniform up to this).
    """

    mean_ns: float = 8.2
    sigma_ns: float = 0.55
    tail_fraction: float = 2e-5
    tail_extra_ns: float = 2.0


class LatencyMarginModel:
    """Per-module cell latency requirements.

    Args:
        cells: sampled cell count (profiling granularity).
        params: distribution parameters.
        module_spread_ns: inter-module offset drawn once per seed —
            modules differ (process corners), which is why per-module
            profiling beats a one-size-fits-all spec.
        seed: module identity.
    """

    def __init__(
        self,
        cells: int = 200_000,
        params: LatencyMarginParams = LatencyMarginParams(),
        module_spread_ns: float = 0.8,
        seed: int = 0,
    ) -> None:
        check_positive("cells", cells)
        rng = derive_rng(seed, "latency")
        offset = rng.normal(0.0, module_spread_ns)
        required = rng.normal(params.mean_ns + offset, params.sigma_ns, size=cells)
        tail = rng.random(cells) < params.tail_fraction
        required[tail] += rng.uniform(0.0, params.tail_extra_ns, size=int(tail.sum()))
        self.required_ns = np.clip(required, 1.0, None)
        self.params = params

    def error_rate_at(self, trcd_ns: float) -> float:
        """Fraction of cells that fail at the given tRCD."""
        check_positive("trcd_ns", trcd_ns)
        return float((self.required_ns > trcd_ns).mean())

    def safe_trcd(self, target_error_rate: float = 0.0, guardband_ns: float = 0.3) -> float:
        """Fastest tRCD meeting the target error rate, plus a guardband."""
        check_probability("target_error_rate", target_error_rate)
        if target_error_rate == 0.0:
            needed = float(self.required_ns.max())
        else:
            needed = float(np.quantile(self.required_ns, 1.0 - target_error_rate))
        return needed + guardband_ns

    def speedup_fraction(self, spec_trcd_ns: float = SPEC_TRCD_NS) -> float:
        """Latency reduction the profiled setting buys over the spec."""
        safe = self.safe_trcd()
        return max(0.0, 1.0 - safe / spec_trcd_ns)


def aldram_study(n_modules: int = 20, seed: int = 0) -> List[dict]:
    """Per-module safe tRCD and speedup — the AL-DRAM distribution."""
    check_positive("n_modules", n_modules)
    rows = []
    for i in range(n_modules):
        model = LatencyMarginModel(seed=seed + i)
        safe = model.safe_trcd()
        rows.append(
            {
                "module": i,
                "safe_trcd_ns": safe,
                "spec_trcd_ns": SPEC_TRCD_NS,
                "speedup_fraction": model.speedup_fraction(),
                "error_rate_at_spec": model.error_rate_at(SPEC_TRCD_NS),
            }
        )
    return rows
