"""Crash-safe append-only JSONL writing, shared by every journal.

The sweep checkpoint, the run ledger, and the service job journal all
follow the same discipline: one record per line, appended with a
single ``write`` on an ``O_APPEND`` descriptor so concurrent writers
interleave whole records, and readers skip (and count) torn lines.

:func:`append_record` adds one more guarantee the individual writers
previously lacked: **torn-tail isolation across restarts**.  If the
previous process died mid-append, the file ends in a partial line with
no newline; a naive append after restart would concatenate the fresh
record onto the torn bytes and corrupt *both*.  Here the appender
checks the file's final byte and, when it is not a newline, prefixes
one — the torn bytes become exactly one corrupt line for the reader to
skip, and the new record parses.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

__all__ = ["append_record", "tail_is_torn"]


def _last_byte(fd: int, size: int) -> bytes:
    if hasattr(os, "pread"):
        return os.pread(fd, 1, size - 1)
    os.lseek(fd, size - 1, os.SEEK_SET)  # pragma: no cover - non-POSIX
    return os.read(fd, 1)  # pragma: no cover - non-POSIX


def tail_is_torn(path: Union[str, Path]) -> bool:
    """Does ``path`` end in a partial (newline-less) line?

    True means the previous writer died mid-append; replayers can use
    this to report the torn tail distinctly from a clean shutdown.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return False
    try:
        size = os.fstat(fd).st_size
        return size > 0 and _last_byte(fd, size) != b"\n"
    finally:
        os.close(fd)


def append_record(path: Union[str, Path], line: bytes,
                  fsync: bool = True) -> bool:
    """Append one newline-terminated JSONL record crash-safely.

    The whole record goes down in a single ``write`` on an
    ``O_APPEND`` descriptor (concurrent writers interleave whole
    records, never fragments), optionally fsynced.  A torn tail left by
    a crashed previous writer is isolated with a leading newline so the
    fresh record still parses.  Best-effort: returns ``False`` on any
    ``OSError`` instead of raising — durability code must never take
    down the work it is trying to preserve.
    """
    path = Path(path)
    if not line.endswith(b"\n"):
        line += b"\n"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(path), os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            size = os.fstat(fd).st_size
            if size > 0 and _last_byte(fd, size) != b"\n":
                line = b"\n" + line
            os.write(fd, line)
            if fsync:
                os.fsync(fd)
        finally:
            os.close(fd)
        return True
    except OSError:
        return False
