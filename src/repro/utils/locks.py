"""Crash-safe advisory file locks with heartbeats, stale takeover, and
monotonic fencing tokens — stdlib only.

The experiment service shares one state directory (result cache, run
ledger, job journal, sweep checkpoints) between daemons and CLI sweeps.
The appenders themselves are already whole-record-atomic
(:mod:`repro.utils.jsonl`), so the remaining hazard is *ownership*: two
daemons must not execute the same submission concurrently, and a
process that lost its claim must never keep writing as if it still held
it.  :class:`FileLock` provides exactly that, with the three properties
crash-tolerant distributed locking actually needs:

**Liveness (stale takeover).**  A lock holder that is SIGKILLed leaves
its lock file behind.  Holders therefore *heartbeat* (bump the lock
file's mtime) while alive; a contender that observes a lock whose mtime
is older than ``stale_after_s`` may take it over.  Takeover is
race-free: the contender first atomically ``rename``\\ s the stale lock
aside (only one contender can win the rename), then recreates the lock
with ``O_CREAT | O_EXCL`` (only one creator can win the create).

**Safety (fencing tokens).**  Every successful acquisition increments a
monotonic *fence token* persisted in ``<lock>.fence`` next to the lock.
The token is written into the lock record, and a holder can cheaply ask
:meth:`FileLock.still_mine` whether the on-disk lock still carries its
token.  A paused/stalled holder whose lock was taken over sees a newer
token and must abandon its write instead of corrupting shared state —
the classic fencing discipline, without needing a lock service.

**Crash-safe bookkeeping.**  The fence bump is serialized by lock
ownership (only the unique winner of the ``O_EXCL`` create performs
it), staged through a temp file, and ``os.replace``\\ d into place, so a
crash mid-bump can never make tokens go backwards.

The locks are *advisory*: writers must check them.  They guard
correctness of ownership, not byte-level atomicity — that remains the
appenders' job.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["DEFAULT_STALE_AFTER_S", "FileLock", "LockLost", "read_fence"]

#: Without a heartbeat for this long, a lock is presumed abandoned and
#: may be taken over.  Holders heartbeat at a quarter of this bound.
DEFAULT_STALE_AFTER_S = 10.0


class LockLost(RuntimeError):
    """This process's claim on a lock has been superseded.

    Raised by :meth:`FileLock.ensure` when the on-disk lock no longer
    carries this holder's fence token (a contender took the lock over,
    or the lock file vanished).  The only correct reaction is to
    abandon the guarded write.
    """


def read_fence(lock_path: Union[str, Path]) -> int:
    """The last fence token issued for ``lock_path`` (0 if none yet)."""
    path = Path(lock_path)
    try:
        return int(path.with_name(path.name + ".fence").read_text().strip())
    except (OSError, ValueError):
        return 0


class FileLock:
    """One advisory lock file with heartbeat, takeover, and fencing.

    ``owner`` names the holder in the lock record (diagnostics only —
    the fence token, unique per acquisition, is what :meth:`still_mine`
    compares).  ``stale_after_s`` is the takeover bound: a lock whose
    mtime is older is presumed abandoned.

    Usage::

        lock = FileLock(state_dir / "locks" / f"{sid}.lock", owner=me)
        if lock.try_acquire():
            try:
                ...                      # do guarded work
                lock.heartbeat()         # periodically, while working
                lock.ensure()            # before any critical write
            finally:
                lock.release()
    """

    def __init__(self, path: Union[str, Path], owner: str = "",
                 stale_after_s: float = DEFAULT_STALE_AFTER_S):
        self.path = Path(path).expanduser()
        self.fence_path = self.path.with_name(self.path.name + ".fence")
        self.owner = owner or f"pid-{os.getpid()}"
        self.stale_after_s = max(0.05, float(stale_after_s))
        self.fence = 0          # token of the current acquisition (0 = none)
        self.held = False
        self.takeovers = 0      # stale takeovers this object performed

    # -- introspection ----------------------------------------------------
    def read_holder(self) -> Optional[Dict[str, Any]]:
        """The on-disk lock record; ``None`` if absent, ``{}`` if the
        file exists but is unparseable (mid-write by another acquirer)."""
        try:
            record = json.loads(self.path.read_text())
        except OSError:
            return None
        except ValueError:
            return {}
        return record if isinstance(record, dict) else {}

    def holder_age_s(self) -> Optional[float]:
        """Seconds since the holder's last heartbeat; ``None`` if free."""
        try:
            return max(0.0, time.time() - self.path.stat().st_mtime)
        except OSError:
            return None

    def is_stale(self) -> bool:
        """Held, but past the takeover bound with no heartbeat?"""
        age = self.holder_age_s()
        return age is not None and age > self.stale_after_s

    # -- acquisition ------------------------------------------------------
    def try_acquire(self) -> bool:
        """One non-blocking acquisition attempt; True on success.

        A fresh (heartbeating) holder blocks the attempt; a stale one is
        taken over.  On success :attr:`fence` holds the newly issued
        token and :attr:`held` is True.
        """
        if self.held and self.still_mine():
            return True
        self.held = False
        for _ in range(2):  # second pass: retry the create after a takeover
            if self._create():
                return True
            if not self.is_stale():
                return False
            if not self._steal_stale():
                # Lost the takeover race; the winner is recreating the
                # lock right now — one immediate retry settles it.
                continue
        return False

    def acquire(self, timeout_s: float = 0.0, poll_s: float = 0.05) -> bool:
        """Blocking acquisition with a deadline; True on success."""
        deadline = time.monotonic() + max(0.0, timeout_s)
        while True:
            if self.try_acquire():
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll_s)

    def _create(self) -> bool:
        """Win the lock via ``O_CREAT | O_EXCL``; bump + record the fence."""
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(str(self.path),
                         os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            return False
        except OSError:
            return False
        try:
            # Serialized by ownership: only the unique O_EXCL winner
            # ever bumps, so the token is monotonic across processes.
            self.fence = self._bump_fence()
            record = {
                "owner": self.owner,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "fence": self.fence,
                "acquired_ts": time.time(),
            }
            blob = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
            os.write(fd, blob)
            os.fsync(fd)
        finally:
            os.close(fd)
        self.held = True
        return True

    def _steal_stale(self) -> bool:
        """Atomically claim a stale lock by renaming it aside.

        Only one contender's rename can succeed; the loser sees
        ``FileNotFoundError`` and retries the create (which the winner
        may or may not have completed yet).
        """
        aside = self.path.with_name(
            f"{self.path.name}.stale.{os.getpid()}.{os.urandom(3).hex()}")
        try:
            os.rename(self.path, aside)
        except OSError:
            return False
        self.takeovers += 1
        try:
            aside.unlink()
        except OSError:  # pragma: no cover - raced cleanup is fine
            pass
        return True

    def _bump_fence(self) -> int:
        token = read_fence(self.path) + 1
        tmp = self.fence_path.with_name(
            f"{self.fence_path.name}.tmp.{os.getpid()}")
        with open(tmp, "w") as handle:
            handle.write(f"{token}\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.fence_path)
        return token

    # -- holding ----------------------------------------------------------
    def heartbeat(self) -> bool:
        """Refresh the lock's mtime; False (and ``held=False``) if the
        lock is no longer this holder's to refresh."""
        if not self.held or not self.still_mine():
            self.held = False
            return False
        try:
            os.utime(self.path, None)
        except OSError:
            self.held = False
            return False
        return True

    def still_mine(self) -> bool:
        """Does the on-disk lock still carry this acquisition's token?"""
        if self.fence <= 0:
            return False
        record = self.read_holder()
        return bool(record) and record.get("fence") == self.fence

    def ensure(self) -> None:
        """Raise :class:`LockLost` unless the lock is still this
        holder's — call immediately before any guarded write."""
        if not self.still_mine():
            self.held = False
            holder = self.read_holder()
            newer = holder.get("fence") if holder else None
            raise LockLost(
                f"lock {self.path.name} superseded: held fence "
                f"{self.fence}, on-disk fence {newer!r}")

    def release(self) -> None:
        """Drop the lock if (and only if) it is still this holder's.

        Releasing a lock another process took over must not unlink
        *their* claim, so a superseded release is a silent no-op.
        """
        if self.held and self.still_mine():
            try:
                self.path.unlink()
            except OSError:  # pragma: no cover - raced removal
                pass
        self.held = False

    # -- context manager --------------------------------------------------
    def __enter__(self) -> "FileLock":
        if not self.try_acquire():
            raise LockLost(f"could not acquire {self.path.name}: "
                           f"held by {self.read_holder()!r}")
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "held" if self.held else "free"
        return f"FileLock({self.path.name}, {state}, fence={self.fence})"
