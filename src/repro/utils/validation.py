"""Small argument-validation helpers shared by public constructors."""

from __future__ import annotations

import numbers


def check_positive(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value >= 0`` (NaN rejected too)."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_int(name: str, value: object) -> None:
    """Raise :class:`TypeError` unless ``value`` is a true integer.

    Rejects bools (a ``True`` block count is a bug, not a 1) and
    integral-valued floats (silent truncation downstream).
    """
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(
            f"{name} must be an integer, got {type(value).__name__} {value!r}"
        )


def check_probability(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise :class:`ValueError` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise :class:`ValueError` unless ``value`` is a positive power of two."""
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")
