"""Shared utilities: seeded RNG management, unit constants, validation,
crash-safe file primitives (JSONL appends, advisory locks)."""

from repro.utils.locks import FileLock, LockLost
from repro.utils.rng import derive_rng, derive_seed, spawn_rngs
from repro.utils.units import (
    KILO,
    MEGA,
    GIGA,
    MS,
    US,
    NS,
    SECONDS_PER_YEAR,
    mebibytes,
    gibibytes,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
)

__all__ = [
    "FileLock",
    "LockLost",
    "derive_rng",
    "derive_seed",
    "spawn_rngs",
    "KILO",
    "MEGA",
    "GIGA",
    "MS",
    "US",
    "NS",
    "SECONDS_PER_YEAR",
    "mebibytes",
    "gibibytes",
    "check_in_range",
    "check_positive",
    "check_power_of_two",
    "check_probability",
]
