"""Deterministic random-number management.

Every stochastic component in the simulator draws from a
:class:`numpy.random.Generator` derived from a root seed plus a string
label.  This keeps experiments reproducible while ensuring that, e.g.,
the weak-cell placement of module #17 does not change when an unrelated
component consumes random numbers.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional

import numpy as np
import numpy.random  # noqa: F401 — eager: keep the lazy subpackage
# import out of timed simulation regions (first derive_rng call)

_SEED_BYTES = 8

#: When not None, every derive_seed call appends its derivation label
#: here (capped) — the failure-capture bundle records these so a replay
#: can assert the same components drew the same randomness.
_capture_labels: Optional[List[str]] = None
_CAPTURE_CAP = 256


def start_label_capture() -> None:
    """Begin recording seed-derivation labels (for failure capture)."""
    global _capture_labels
    _capture_labels = []


def stop_label_capture() -> List[str]:
    """Stop recording and return the captured derivation labels."""
    global _capture_labels
    labels = _capture_labels or []
    _capture_labels = None
    return labels


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a child seed from ``root_seed`` and a sequence of labels.

    The derivation hashes the root seed together with the string forms
    of the labels, so any hashable/printable component identity (module
    serial, bank index, mechanism name) can participate.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode())
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode())
    if _capture_labels is not None and len(_capture_labels) < _CAPTURE_CAP:
        _capture_labels.append(
            "/".join([str(int(root_seed))] + [str(label) for label in labels])
        )
    return int.from_bytes(hasher.digest()[:_SEED_BYTES], "little")


def derive_rng(root_seed: int, *labels: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``(root_seed, labels)``."""
    return np.random.default_rng(derive_seed(root_seed, *labels))


def spawn_rngs(root_seed: int, labels: Iterable[object]) -> List[np.random.Generator]:
    """Return one independent generator per label."""
    return [derive_rng(root_seed, label) for label in labels]
