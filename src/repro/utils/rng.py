"""Deterministic random-number management.

Every stochastic component in the simulator draws from a
:class:`numpy.random.Generator` derived from a root seed plus a string
label.  This keeps experiments reproducible while ensuring that, e.g.,
the weak-cell placement of module #17 does not change when an unrelated
component consumes random numbers.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List

import numpy as np

_SEED_BYTES = 8


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a child seed from ``root_seed`` and a sequence of labels.

    The derivation hashes the root seed together with the string forms
    of the labels, so any hashable/printable component identity (module
    serial, bank index, mechanism name) can participate.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode())
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode())
    return int.from_bytes(hasher.digest()[:_SEED_BYTES], "little")


def derive_rng(root_seed: int, *labels: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``(root_seed, labels)``."""
    return np.random.default_rng(derive_seed(root_seed, *labels))


def spawn_rngs(root_seed: int, labels: Iterable[object]) -> List[np.random.Generator]:
    """Return one independent generator per label."""
    return [derive_rng(root_seed, label) for label in labels]
