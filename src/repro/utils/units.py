"""Unit constants used throughout the simulator.

Simulated time is kept in **nanoseconds** (floats), matching DRAM timing
datasheets.  Sizes are kept in bits or bytes as noted at each use site.
"""

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

# Time units expressed in nanoseconds.
NS = 1.0
US = 1_000.0
MS = 1_000_000.0

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


def mebibytes(n: float) -> int:
    """Return ``n`` MiB expressed in bytes."""
    return int(n * 1024 * 1024)


def gibibytes(n: float) -> int:
    """Return ``n`` GiB expressed in bytes."""
    return int(n * 1024 * 1024 * 1024)
