"""The service job journal and the submission model.

Every accepted submission becomes one ``submit`` record in an
append-only ``jobs.jsonl``; lifecycle transitions append ``start``,
``done``, and ``cancel`` records.  Appends are single ``O_APPEND``
writes followed by ``fsync`` (see :mod:`repro.utils.jsonl`), so a
SIGKILL can tear at most the final line — and :meth:`JobJournal.replay`
skips (and counts) torn lines instead of raising.

Replay semantics give the daemon its crash contract: a submission
without a matching ``done``/``cancel`` is *pending* and re-enqueues on
restart; completed work is never re-executed because the sweep
checkpoint and result cache under the same state directory still hold
it.

Submissions are **idempotent**: a :class:`JobSpec`'s service ID
(``sid``) derives from the same ``job_key`` digest the cache and
checkpoint use, so a client retrying a ``POST /jobs`` it never saw the
response to maps onto the already-journaled job instead of
double-running it.

The journal is also the **coordination bus** between daemons sharing
one state directory: each daemon journals its own admissions and
periodically rescans the file to discover the others' (whole-record
``O_APPEND`` writes make concurrent appenders safe), while per-sid
advisory locks (:mod:`repro.utils.locks`) decide who executes what.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Set, Union

from repro.experiments import registry
from repro.experiments.checkpoint import job_key
from repro.experiments.runner import Job, derive_seed
from repro.telemetry import ids
from repro.utils.jsonl import append_record

__all__ = ["DONE_OUTCOMES", "JOURNAL_SCHEMA", "JOURNAL_EVENTS", "JobJournal",
           "JobSpec", "ReplayState"]

JOURNAL_SCHEMA = 1

#: The journal's event vocabulary, in lifecycle order.
JOURNAL_EVENTS = ("submit", "start", "done", "cancel")

#: ``done`` record outcomes: ``ok`` (all jobs succeeded), ``error``
#: (individual jobs errored but the submission ran to completion),
#: ``failed`` (the submission's fault domain was poisoned — invariant
#: violation, timeout-exhausted job, or runner collapse — and execution
#: stopped early), ``cancelled``.  Unknown outcomes replay as ``error``.
DONE_OUTCOMES = ("ok", "error", "failed", "cancelled")


@dataclass(frozen=True)
class JobSpec:
    """One validated submission: a single experiment run or a seed sweep.

    ``kind`` is ``"experiment"`` (one ``seed``) or ``"sweep"``
    (``seeds`` replicas derived from ``base_seed`` exactly like
    ``repro sweep``).  The spec is immutable and canonically
    identified by :attr:`sid`.
    """

    kind: str
    name: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    seeds: int = 0
    base_seed: int = 0
    timeout_s: Optional[float] = None
    retries: int = 0

    @property
    def sid(self) -> str:
        """The idempotent service job ID (12 hex chars).

        Derived from the cache/checkpoint ``job_key`` digest: the same
        submission always maps to the same ID, in any process, so
        client retries never double-run.  Sweeps fold their shape into
        the key's params so a sweep and one of its member jobs can
        never collide.
        """
        if self.kind == "sweep":
            key = job_key(self.name, {
                **dict(self.params),
                "__sweep__": {"seeds": self.seeds, "base_seed": self.base_seed},
            }, None)
        else:
            key = job_key(self.name, self.params, self.seed)
        return ids.job_id_from_key(key)

    @classmethod
    def from_payload(cls, payload: Any) -> "JobSpec":
        """Validate a ``POST /jobs`` body into a spec.

        Raises ``ValueError`` with a client-presentable message on any
        malformed submission — unknown experiment, bad params, a sweep
        of a seedless experiment, or unknown fields.
        """
        if not isinstance(payload, dict):
            raise ValueError("job submission must be a JSON object")
        known = {"kind", "name", "params", "seed", "seeds", "base_seed",
                 "timeout_s", "retries"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown field(s): {', '.join(unknown)}")
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError("missing experiment 'name'")
        try:
            spec = registry.get(name)
        except KeyError:
            raise ValueError(f"unknown experiment {name!r}") from None
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise ValueError("'params' must be an object")
        kind = payload.get("kind")
        seeds = int(payload.get("seeds") or 0)
        if kind is None:  # infer: a seeds count means a sweep
            kind = "sweep" if seeds > 0 else "experiment"
        if kind not in ("experiment", "sweep"):
            raise ValueError(f"unknown job kind {kind!r}")
        if kind == "sweep":
            if seeds <= 0:
                raise ValueError("a sweep needs 'seeds' >= 1")
            if not spec.accepts_seed:
                raise ValueError(
                    f"experiment {spec.name!r} takes no seed; a sweep "
                    f"would run {seeds} identical jobs")
        seed = int(payload.get("seed") or 0)
        timeout_s = payload.get("timeout_s")
        if timeout_s is not None:
            timeout_s = float(timeout_s)
            if timeout_s <= 0:
                raise ValueError("'timeout_s' must be positive")
        retries = int(payload.get("retries") or 0)
        if retries < 0:
            raise ValueError("'retries' must be >= 0")
        # Bind now so bad params are a 400 at submission, not a failed
        # job minutes later.
        probe_seed: Optional[int] = None
        if spec.accepts_seed:
            probe_seed = derive_seed(int(payload.get("base_seed") or 0), 0) \
                if kind == "sweep" else seed
        try:
            spec.bind(params=params, seed=probe_seed)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad params for {spec.name!r}: {exc}") from None
        return cls(kind=kind, name=spec.name, params=dict(params),
                   seed=seed, seeds=seeds,
                   base_seed=int(payload.get("base_seed") or 0),
                   timeout_s=timeout_s, retries=retries)

    def to_json_dict(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"kind": self.kind, "name": self.name,
                                "params": dict(self.params)}
        if self.kind == "sweep":
            body["seeds"] = self.seeds
            body["base_seed"] = self.base_seed
        else:
            body["seed"] = self.seed
        if self.timeout_s is not None:
            body["timeout_s"] = self.timeout_s
        if self.retries:
            body["retries"] = self.retries
        return body

    def expand(self) -> List[Job]:
        """The runner jobs this submission multiplexes into."""
        spec = registry.get(self.name)
        if self.kind == "sweep":
            return [Job(self.name, dict(self.params),
                        derive_seed(self.base_seed, i),
                        timeout_s=self.timeout_s)
                    for i in range(self.seeds)]
        seed = self.seed if spec.accepts_seed else None
        return [Job(self.name, dict(self.params), seed,
                    timeout_s=self.timeout_s)]

    @property
    def job_count(self) -> int:
        return self.seeds if self.kind == "sweep" else 1


@dataclass
class ReplayState:
    """What a journal replay recovered."""

    submits: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    done: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    cancelled: Set[str] = field(default_factory=set)
    order: List[str] = field(default_factory=list)
    starts: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    corrupt_lines: int = 0

    def pending(self) -> List[str]:
        """Journaled-but-unfinished sids, in submission order — the
        work a restarted daemon re-enqueues."""
        return [sid for sid in self.order
                if sid not in self.done and sid not in self.cancelled]


class JobJournal:
    """Append-only JSONL journal of service job lifecycle events."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path).expanduser()

    # -- writing ----------------------------------------------------------
    def append(self, event: str, sid: str, **fields: Any) -> bool:
        """Append one lifecycle record; best-effort (False on failure).

        This is also the ``torn_journal`` chaos injection point: an
        armed schedule may write the record truncated, with no trailing
        newline, exactly as a SIGKILL mid-``write`` would.
        """
        record = {"schema": JOURNAL_SCHEMA, "event": event, "sid": sid,
                  "ts": time.time(), **fields}
        line = (json.dumps(record, sort_keys=True, default=repr) + "\n"
                ).encode("utf-8")
        from repro import chaos

        if chaos.enabled() and chaos.tear_journal_append(event):
            # Injected torn write: half the record, no trailing newline
            # — byte-for-byte what a SIGKILL mid-write leaves behind.
            torn = line[: max(1, len(line) // 2)]
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(str(self.path),
                             os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
                try:
                    os.write(fd, torn)
                    os.fsync(fd)
                finally:
                    os.close(fd)
            except OSError:  # pragma: no cover - injected path only
                pass
            return False
        return append_record(self.path, line, fsync=True)

    def submit(self, spec: JobSpec) -> bool:
        return self.append("submit", spec.sid, spec=spec.to_json_dict())

    def start(self, sid: str, run_id: str) -> bool:
        return self.append("start", sid, run_id=run_id)

    def done(self, sid: str, outcome: str, **fields: Any) -> bool:
        return self.append("done", sid, outcome=outcome, **fields)

    def cancel(self, sid: str) -> bool:
        return self.append("cancel", sid)

    # -- reading ----------------------------------------------------------
    def replay(self) -> ReplayState:
        """Reconstruct job state from the journal, torn-tail tolerant.

        Unparseable or wrong-schema lines are skipped and counted in
        ``corrupt_lines`` — a torn final line after a SIGKILL is
        expected, not an error.  Duplicate submits collapse (first
        wins, preserving submission order); the last ``done`` per sid
        wins.
        """
        state = ReplayState()
        if not self.path.is_file():
            return state
        with open(self.path) as handle:
            for raw in handle:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw)
                except ValueError:
                    state.corrupt_lines += 1
                    continue
                if (not isinstance(record, dict)
                        or record.get("schema") != JOURNAL_SCHEMA
                        or record.get("event") not in JOURNAL_EVENTS
                        or not record.get("sid")):
                    state.corrupt_lines += 1
                    continue
                sid = record["sid"]
                event = record["event"]
                if event == "submit":
                    if sid not in state.submits:
                        state.submits[sid] = record
                        state.order.append(sid)
                elif event == "start":
                    state.starts[sid] = record
                elif event == "done":
                    state.done[sid] = record
                elif event == "cancel":
                    state.cancelled.add(sid)
        return state
