"""HTTP client for the experiment service (``repro submit``/``repro jobs``).

Stdlib-only (:mod:`urllib`).  The client is deliberately boring: JSON
in, JSON out, with a bounded retry/backoff loop around the two failure
shapes a long-running daemon actually presents — connection errors
while it restarts, and 429/503 shedding while it is loaded or
draining (honoring ``Retry-After``).  Retries are bounded; the caller
always gets either a response or a typed exception, never a hang.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["ServiceClient", "ServiceError", "ServiceUnavailable"]

#: Ceiling on a single retry sleep, even if ``Retry-After`` asks for more.
MAX_RETRY_SLEEP_S = 5.0


class ServiceError(Exception):
    """A definitive (non-retryable, or retries-exhausted) service error."""

    def __init__(self, message: str, status: Optional[int] = None,
                 body: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.status = status
        self.body = body or {}


class ServiceUnavailable(ServiceError):
    """The daemon could not be reached within the retry budget."""


class ServiceClient:
    """A small JSON/HTTP client bound to one daemon endpoint.

    ``retries`` bounds how many times a request is re-sent after a
    connection error or a 429/503; ``backoff_s`` seeds the exponential
    sleep between attempts (``Retry-After``, when present, overrides
    it, capped at :data:`MAX_RETRY_SLEEP_S`).
    """

    def __init__(self, base_url: str, timeout_s: float = 10.0,
                 retries: int = 5, backoff_s: float = 0.25):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s

    @classmethod
    def from_state_dir(cls, state_dir: Union[str, Path],
                       **kwargs: Any) -> "ServiceClient":
        """Connect to the daemon owning ``state_dir`` via its endpoint
        record; raises :class:`ServiceUnavailable` if none exists."""
        from repro.service.daemon import read_endpoint

        record = read_endpoint(state_dir)
        if record is None or "port" not in record:
            raise ServiceUnavailable(
                f"no running service found under {state_dir} "
                f"(missing/unreadable service.json)")
        return cls(f"http://{record.get('host', '127.0.0.1')}"
                   f":{record['port']}", **kwargs)

    # -- transport --------------------------------------------------------
    def _sleep_for(self, attempt: int,
                   retry_after: Optional[str] = None) -> None:
        delay = self.backoff_s * (2 ** attempt)
        if retry_after:
            try:
                delay = max(delay, float(retry_after))
            except ValueError:
                pass
        time.sleep(min(delay, MAX_RETRY_SLEEP_S))

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None,
                retry_shed: bool = True) -> Dict[str, Any]:
        """One JSON round-trip with the bounded retry loop.

        4xx responses other than 429 raise :class:`ServiceError`
        immediately (retrying a 400 cannot help); 429/503 retry when
        ``retry_shed``, honoring ``Retry-After``.
        """
        url = f"{self.base_url}{path}"
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        last_error: Optional[ServiceError] = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                url, data=data, method=method,
                headers={"Content-Type": "application/json"} if data else {})
            try:
                with urllib.request.urlopen(
                        request, timeout=self.timeout_s) as response:
                    return self._parse(response.read())
            except urllib.error.HTTPError as exc:
                payload = self._parse(exc.read())
                if exc.code in (429, 503) and retry_shed:
                    last_error = ServiceError(
                        payload.get("error", f"HTTP {exc.code}"),
                        status=exc.code, body=payload)
                    if attempt < self.retries:
                        self._sleep_for(
                            attempt, exc.headers.get("Retry-After"))
                    continue
                raise ServiceError(payload.get("error", f"HTTP {exc.code}"),
                                   status=exc.code, body=payload) from None
            except (urllib.error.URLError, ConnectionError,
                    socket.timeout, OSError) as exc:
                last_error = ServiceUnavailable(
                    f"cannot reach {url}: {exc}")
                if attempt < self.retries:
                    self._sleep_for(attempt)
                continue
        raise last_error if last_error is not None else ServiceUnavailable(
            f"cannot reach {url}")

    @staticmethod
    def _parse(blob: bytes) -> Dict[str, Any]:
        try:
            parsed = json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return {}
        return parsed if isinstance(parsed, dict) else {}

    # -- API --------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("POST", "/jobs", body=payload)

    def jobs(self) -> List[Dict[str, Any]]:
        return self.request("GET", "/jobs").get("jobs", [])

    def job(self, sid: str) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{sid}")

    def cancel(self, sid: str) -> Dict[str, Any]:
        return self.request("DELETE", f"/jobs/{sid}")

    def metrics_text(self) -> str:
        url = f"{self.base_url}/metrics"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout_s) as resp:
                return resp.read().decode("utf-8")
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            raise ServiceUnavailable(f"cannot reach {url}: {exc}") from None

    def wait(self, sid: str, timeout_s: float = 60.0,
             poll_s: float = 0.2) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; the final record.

        Raises ``TimeoutError`` if it does not settle in time — callers
        like the CI smoke test need a hard bound, not an open poll.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.job(sid)
            if record.get("state") in ("done", "error", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {sid} still {record.get('state')!r} after "
                    f"{timeout_s:.0f}s")
            time.sleep(poll_s)
