"""HTTP client for the experiment service (``repro submit``/``repro jobs``).

Stdlib-only (:mod:`urllib`).  The client is deliberately boring: JSON
in, JSON out, with a bounded retry/backoff loop around the two failure
shapes a long-running daemon actually presents — connection errors
while it restarts, and 429/503 shedding while it is loaded or
draining (honoring ``Retry-After``).  Retries are bounded; the caller
always gets either a response or a typed exception, never a hang.

Retry sleeps carry *deterministic* jitter, derived the same way the
runner's backoff is (sha256 of seed + attempt): many clients shed by a
recovering daemon de-synchronize instead of thundering-herding it at
the same instant, yet any one client's schedule is reproducible from
its ``jitter_seed``.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["ServiceClient", "ServiceError", "ServiceTimeout",
           "ServiceUnavailable", "retry_delay_s"]

#: Ceiling on a single retry sleep, even if ``Retry-After`` asks for more.
MAX_RETRY_SLEEP_S = 5.0

#: Job states the client treats as settled (no further polling).
TERMINAL_STATES = ("done", "error", "cancelled", "failed")


class ServiceError(Exception):
    """A definitive (non-retryable, or retries-exhausted) service error."""

    def __init__(self, message: str, status: Optional[int] = None,
                 body: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.status = status
        self.body = body or {}


class ServiceUnavailable(ServiceError):
    """The daemon could not be reached within the retry budget."""


class ServiceTimeout(ServiceError, TimeoutError):
    """A wait deadline expired before the job settled.

    Subclasses ``TimeoutError`` so callers written against the old
    bare-``TimeoutError`` contract keep working.
    """


def retry_delay_s(backoff_s: float, attempt: int,
                  retry_after: Optional[str] = None, seed: int = 0,
                  cap_s: float = MAX_RETRY_SLEEP_S) -> float:
    """Deterministic jittered retry delay for ``attempt`` (0-based).

    Exponential from ``backoff_s``, scaled into ``[0.5×, 1.5×)`` by a
    sha256-derived factor of ``(seed, attempt)`` — the same jitter
    construction as the runner's ``retry_backoff_s``.  ``Retry-After``
    raises the floor (the daemon knows its own load) and ``cap_s``
    bounds the result.
    """
    digest = hashlib.sha256(f"{seed}:{attempt}".encode("utf-8")).digest()
    jitter = int.from_bytes(digest[:4], "big") / 2 ** 32
    delay = backoff_s * (2 ** attempt) * (0.5 + jitter)
    if retry_after:
        try:
            delay = max(delay, float(retry_after))
        except ValueError:
            pass
    return min(delay, cap_s)


class ServiceClient:
    """A small JSON/HTTP client bound to one daemon endpoint.

    ``retries`` bounds how many times a request is re-sent after a
    connection error or a 429/503; ``backoff_s`` seeds the exponential
    sleep between attempts (``Retry-After``, when present, overrides
    it, capped at :data:`MAX_RETRY_SLEEP_S`).  ``jitter_seed`` pins the
    deterministic retry jitter; by default each client draws a random
    seed so a fleet of clients spreads its retries out.
    """

    def __init__(self, base_url: str, timeout_s: float = 10.0,
                 retries: int = 5, backoff_s: float = 0.25,
                 jitter_seed: Optional[int] = None):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        if jitter_seed is None:
            jitter_seed = int.from_bytes(os.urandom(4), "big")
        self.jitter_seed = int(jitter_seed)

    @classmethod
    def from_state_dir(cls, state_dir: Union[str, Path],
                       **kwargs: Any) -> "ServiceClient":
        """Connect to the daemon owning ``state_dir`` via its endpoint
        record; raises :class:`ServiceUnavailable` if none exists."""
        from repro.service.daemon import read_endpoint

        record = read_endpoint(state_dir)
        if record is None or "port" not in record:
            raise ServiceUnavailable(
                f"no running service found under {state_dir} "
                f"(missing/unreadable service.json)")
        return cls(f"http://{record.get('host', '127.0.0.1')}"
                   f":{record['port']}", **kwargs)

    # -- transport --------------------------------------------------------
    def _sleep_for(self, attempt: int,
                   retry_after: Optional[str] = None) -> None:
        time.sleep(retry_delay_s(self.backoff_s, attempt,
                                 retry_after=retry_after,
                                 seed=self.jitter_seed))

    def request(self, method: str, path: str,
                body: Optional[Dict[str, Any]] = None,
                retry_shed: bool = True,
                timeout_s: Optional[float] = None,
                retries: Optional[int] = None) -> Dict[str, Any]:
        """One JSON round-trip with the bounded retry loop.

        4xx responses other than 429 raise :class:`ServiceError`
        immediately (retrying a 400 cannot help); 429/503 retry when
        ``retry_shed``, honoring ``Retry-After``.  ``timeout_s`` and
        ``retries`` override the per-request socket timeout and retry
        budget (deadline-bounded polls shrink both to their remaining
        budget).
        """
        url = f"{self.base_url}{path}"
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        socket_timeout = self.timeout_s if timeout_s is None else timeout_s
        budget = self.retries if retries is None else max(0, int(retries))
        last_error: Optional[ServiceError] = None
        for attempt in range(budget + 1):
            request = urllib.request.Request(
                url, data=data, method=method,
                headers={"Content-Type": "application/json"} if data else {})
            try:
                with urllib.request.urlopen(
                        request, timeout=socket_timeout) as response:
                    return self._parse(response.read())
            except urllib.error.HTTPError as exc:
                payload = self._parse(exc.read())
                if exc.code in (429, 503) and retry_shed:
                    last_error = ServiceError(
                        payload.get("error", f"HTTP {exc.code}"),
                        status=exc.code, body=payload)
                    if attempt < budget:
                        self._sleep_for(
                            attempt, exc.headers.get("Retry-After"))
                    continue
                raise ServiceError(payload.get("error", f"HTTP {exc.code}"),
                                   status=exc.code, body=payload) from None
            except (urllib.error.URLError, ConnectionError,
                    socket.timeout, OSError) as exc:
                last_error = ServiceUnavailable(
                    f"cannot reach {url}: {exc}")
                if attempt < budget:
                    self._sleep_for(attempt)
                continue
        raise last_error if last_error is not None else ServiceUnavailable(
            f"cannot reach {url}")

    @staticmethod
    def _parse(blob: bytes) -> Dict[str, Any]:
        try:
            parsed = json.loads(blob.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return {}
        return parsed if isinstance(parsed, dict) else {}

    # -- API --------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self.request("POST", "/jobs", body=payload)

    def jobs(self) -> List[Dict[str, Any]]:
        return self.request("GET", "/jobs").get("jobs", [])

    def job(self, sid: str, timeout_s: Optional[float] = None,
            retries: Optional[int] = None) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{sid}", timeout_s=timeout_s,
                            retries=retries)

    def cancel(self, sid: str) -> Dict[str, Any]:
        return self.request("DELETE", f"/jobs/{sid}")

    def metrics_text(self) -> str:
        url = f"{self.base_url}/metrics"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout_s) as resp:
                return resp.read().decode("utf-8")
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            raise ServiceUnavailable(f"cannot reach {url}: {exc}") from None

    def wait(self, sid: str, timeout_s: float = 60.0, poll_s: float = 0.2,
             deadline: Optional[float] = None) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; the final record.

        The wait is hard-bounded: ``deadline`` (a ``time.monotonic()``
        instant; defaults to now + ``timeout_s``) caps the whole poll
        *including* the in-flight request — each request's socket
        timeout shrinks to the remaining budget, so a hung daemon that
        accepts connections but never answers cannot stall the caller
        past the deadline.  Expiry raises :class:`ServiceTimeout` (a
        ``TimeoutError`` subclass).
        """
        if deadline is None:
            deadline = time.monotonic() + timeout_s
        last_state: Optional[str] = None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceTimeout(
                    f"job {sid} still {last_state!r} at deadline "
                    f"(+{timeout_s:g}s)")
            try:
                # No inner retries: this loop is the retry loop, and
                # the deadline must bound every sleep.
                record = self.job(
                    sid, timeout_s=max(0.05, min(self.timeout_s, remaining)),
                    retries=0)
            except ServiceUnavailable:
                # A daemon mid-restart (or hung past its socket timeout)
                # is retried until the deadline, not surfaced mid-wait.
                record = {}
            last_state = record.get("state")
            if last_state in TERMINAL_STATES:
                return record
            time.sleep(min(poll_s, max(0.0, deadline - time.monotonic())))
