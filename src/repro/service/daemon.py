"""The experiment service daemon: HTTP front end + journaled execution.

One :class:`ExperimentService` owns a state directory::

    <state-dir>/
      service.json        # endpoint record: host, port, pid, service_id
      jobs.jsonl          # append-only job journal (crash-safe)
      ledger.jsonl        # run ledger of every executed job (command=service)
      cache/              # shared result cache (idempotent re-runs hit it)
      checkpoints/<sid>.jsonl   # per-sweep checkpoints (resume after SIGKILL)
      locks/<sid>.lock    # per-submission advisory locks (+ .fence tokens)

Design decisions that make it kill-tolerant:

* **Journal first.**  A submission is journaled before it is queued;
  the 202 response only goes out once the record is fsynced.  Replay
  on startup re-enqueues every journaled submission without a
  ``done``/``cancel`` record.
* **Chunked multiplexing.**  A sweep runs through the hardened
  :class:`~repro.experiments.runner.ExperimentRunner` in chunks of
  ``2 × workers`` jobs with drain/cancel checks between chunks, and
  every chunk records into the sweep's checkpoint — so a SIGKILL loses
  at most the chunk in flight, and a restart resumes from the
  checkpoint + cache instead of re-executing.
* **Fair concurrent scheduling.**  Up to ``max_concurrent`` submissions
  execute at once, each in its own fault domain.  Chunk workers pull
  submissions round-robin from a runnable ring — after each chunk a
  submission goes to the back of the ring — so a 10k-job sweep cannot
  starve a co-scheduled 1-job run.  A *poisoned* submission (invariant
  violation, timeout-exhausted job, runner-level collapse) fails fast
  to a structured ``failed`` state without touching its co-scheduled
  neighbours; plain job errors keep the legacy run-to-completion →
  ``error`` behaviour.
* **Multi-daemon shared state.**  Every submission is guarded by a
  heartbeated, fenced advisory lock (:mod:`repro.utils.locks`) under
  ``locks/``, so N daemons — or a daemon plus CLI sweeps — can share
  one state dir.  A scheduler thread heartbeats held locks, retries
  contended ones, and periodically rescans the journal to discover
  submissions admitted by sibling daemons and to fold in their
  completions.  If a sibling SIGKILLs mid-submission, its lock goes
  stale within ``lock_stale_s`` and a survivor takes over, resuming
  from the shared checkpoint/cache (exactly-once via the job key).  A
  holder that lost its lock sees the newer fence token and abandons
  its journal write rather than corrupt shared files.
* **Graceful drain.**  SIGTERM/SIGINT stop admission (503), let
  in-flight chunks finish (their results are checkpointed), release
  the locks, leave queued jobs journaled for the next incarnation, and
  exit 0.
* **Bounded queue.**  Past ``max_queue`` waiting jobs, submissions are
  shed with 429 + ``Retry-After`` (estimated from observed job
  durations) instead of growing without limit.

Known imprecision under ``max_concurrent > 1``: run-id propagation into
pool workers rides an environment variable set by ``ids.run_scope``, so
two runners forking pools at the same instant can stamp each other's
run id on *in-result* metadata.  The journal's ``start`` records and
all checkpoint/ledger records use each runner's explicit run id, so
correlation via ``/jobs`` and exactly-once accounting are unaffected.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Set, Union

from repro.experiments.runner import ExperimentRunner
from repro.service.journal import JobJournal, JobSpec
from repro.telemetry import MetricsRegistry, RunLedger
from repro.telemetry import export, ids
from repro.utils.locks import DEFAULT_STALE_AFTER_S, FileLock, LockLost

__all__ = ["DEFAULT_SERVICE_PORT", "ENDPOINT_FILE", "ExperimentService",
           "read_endpoint"]

#: Default ``repro serve`` port (one above the metrics exporter's).
DEFAULT_SERVICE_PORT = 9465

#: The endpoint record the daemon drops in its state dir on startup.
ENDPOINT_FILE = "service.json"

#: ``Retry-After`` seconds sent while draining (a restart is expected).
DRAINING_RETRY_AFTER_S = 10

#: How often (seconds) the scheduler rescans the journal for foreign
#: submissions / completions by sibling daemons sharing the state dir.
DEFAULT_RESCAN_S = 2.0

#: Terminal in-memory job states (no further transitions).
_TERMINAL = ("done", "error", "cancelled", "failed")

#: Journal ``done`` outcome → in-memory state (unknown outcomes are
#: conservative errors).
_OUTCOME_STATE = {"ok": "done", "cancelled": "cancelled", "failed": "failed"}


def read_endpoint(state_dir: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The endpoint record of the daemon owning ``state_dir``, if any."""
    path = Path(state_dir).expanduser() / ENDPOINT_FILE
    try:
        record = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return record if isinstance(record, dict) else None


class _JobRecord:
    """In-memory view of one service job (the journal is the truth)."""

    __slots__ = ("sid", "spec", "state", "submitted_ts", "started_ts",
                 "finished_ts", "run_id", "completed", "summary", "result",
                 "error", "wall_s", "peak_rss_kb", "inflight")

    def __init__(self, sid: str, spec: JobSpec, state: str = "queued"):
        self.sid = sid
        self.spec = spec
        self.state = state
        self.submitted_ts = time.time()
        self.started_ts: Optional[float] = None
        self.finished_ts: Optional[float] = None
        self.run_id: Optional[str] = None
        self.completed = 0
        self.summary: Optional[Dict[str, Any]] = None
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.wall_s = 0.0          # cumulative chunk wall time
        self.peak_rss_kb = 0       # max per-job RSS observed so far
        self.inflight = 0          # jobs in the chunk currently executing

    def brief(self) -> Dict[str, Any]:
        return {
            "sid": self.sid,
            "kind": self.spec.kind,
            "name": self.spec.name,
            "state": self.state,
            "jobs": self.spec.job_count,
            "completed": self.completed,
            "inflight": self.inflight,
            "wall_s": round(self.wall_s, 6),
            "peak_rss_kb": self.peak_rss_kb,
            "submitted_ts": self.submitted_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "run_id": self.run_id,
        }

    def full(self) -> Dict[str, Any]:
        body = self.brief()
        body["spec"] = self.spec.to_json_dict()
        if self.summary is not None:
            body["summary"] = self.summary
        if self.result is not None:
            body["result"] = self.result
        if self.error is not None:
            body["error"] = self.error
        return body


class _Execution:
    """One activated submission: its runner, cursor, and lock."""

    __slots__ = ("rec", "runner", "jobs", "next_index", "results", "lock",
                 "chunk_size", "poison")

    def __init__(self, rec: _JobRecord, runner: ExperimentRunner,
                 jobs: List[Any], lock: FileLock, chunk_size: int):
        self.rec = rec
        self.runner = runner
        self.jobs = jobs
        self.next_index = 0
        self.results: List[Any] = []
        self.lock = lock
        self.chunk_size = chunk_size
        self.poison: Optional[str] = None  # reason, once poisoned


class ExperimentService:
    """A crash-tolerant daemon multiplexing jobs onto the hardened runner.

    ``workers`` is the runner pool width per submission;
    ``max_concurrent`` is how many submissions execute at once (each in
    its own fault domain, scheduled round-robin by chunk).  The default
    of 1 preserves the serialized PR 9 behaviour.  ``lock_stale_s``
    bounds how long a SIGKILLed sibling daemon's submission lock
    survives before a survivor takes it over; ``rescan_s`` is the
    journal rescan cadence for discovering sibling daemons' work.
    ``start_worker=False`` leaves the execution threads unstarted —
    deterministic queue-state tests use it; production never does.
    """

    def __init__(self, state_dir: Union[str, Path],
                 host: str = "127.0.0.1",
                 port: int = DEFAULT_SERVICE_PORT,
                 workers: int = 2,
                 max_queue: int = 64,
                 timeout_s: Optional[float] = None,
                 retries: int = 0,
                 max_concurrent: int = 1,
                 lock_stale_s: float = DEFAULT_STALE_AFTER_S,
                 rescan_s: float = DEFAULT_RESCAN_S,
                 start_worker: bool = True):
        self.state_dir = Path(state_dir).expanduser()
        self.host = host
        self.requested_port = port
        self.workers = max(1, int(workers))
        self.max_queue = max(0, int(max_queue))
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.max_concurrent = max(1, int(max_concurrent))
        self.lock_stale_s = max(0.05, float(lock_stale_s))
        self.rescan_s = max(0.0, float(rescan_s))
        self.service_id = ids.new_run_id(prefix="s")
        self.started_mono = time.monotonic()

        self.journal = JobJournal(self.state_dir / "jobs.jsonl")
        self.ledger = RunLedger(self.state_dir / "ledger.jsonl")
        self.cache_dir = self.state_dir / "cache"
        self.checkpoint_dir = self.state_dir / "checkpoints"
        self.lock_dir = self.state_dir / "locks"

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.jobs: Dict[str, _JobRecord] = {}
        self.order: List[str] = []
        self.queue: Deque[str] = deque()
        self.cancel_requests: Set[str] = set()
        self.draining = False
        self.degraded = False
        self.metrics = MetricsRegistry()
        self._avg_job_s = 1.0  # EWMA of per-runner-job wall seconds
        self._executions: Dict[str, _Execution] = {}
        self._rr: Deque[str] = deque()        # runnable ring (round-robin)
        self._lock_retry_at: Dict[str, float] = {}
        self._lock_takeovers = 0
        self._locks_lost = 0
        self._drained = threading.Event()
        self._start_worker = start_worker
        self._worker: Optional[threading.Thread] = None
        self._chunk_threads: List[threading.Thread] = []
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self.port: Optional[int] = None

    # -- lifecycle --------------------------------------------------------
    def start(self) -> "ExperimentService":
        """Replay the journal, bind the HTTP server, start the scheduler."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self._replay_journal()
        self._httpd = ThreadingHTTPServer((self.host, self.requested_port),
                                          self._handler_class())
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http", daemon=True)
        self._http_thread.start()
        if self._start_worker:
            for index in range(self.max_concurrent):
                thread = threading.Thread(
                    target=self._chunk_worker,
                    name=f"repro-service-chunk-{index}", daemon=True)
                thread.start()
                self._chunk_threads.append(thread)
            self._worker = threading.Thread(
                target=self._scheduler_loop, name="repro-service-scheduler",
                daemon=True)
            self._worker.start()
        self._write_endpoint()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _write_endpoint(self) -> None:
        record = {"host": self.host, "port": self.port, "pid": os.getpid(),
                  "service_id": self.service_id,
                  "state_dir": str(self.state_dir)}
        path = self.state_dir / ENDPOINT_FILE
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
        os.replace(tmp, path)

    def _replay_journal(self) -> None:
        """Restore job state from the journal; re-enqueue unfinished work."""
        had_journal = self.journal.path.is_file()
        state = self.journal.replay()
        recovered = 0
        for sid in state.order:
            try:
                spec = JobSpec.from_payload(state.submits[sid].get("spec"))
            except ValueError as exc:
                rec = _JobRecord(sid, JobSpec(kind="experiment",
                                              name="unknown"), state="error")
                rec.error = f"unreplayable submission: {exc}"
                self.jobs[sid] = rec
                self.order.append(sid)
                continue
            rec = _JobRecord(sid, spec)
            start_rec = state.starts.get(sid)
            if start_rec is not None:
                rec.run_id = start_rec.get("run_id")
            done = state.done.get(sid)
            if done is not None:
                self._fold_done(rec, done)
            elif sid in state.cancelled:
                rec.state = "cancelled"
            else:
                rec.state = "queued"
                self.queue.append(sid)
                recovered += 1
            self.jobs[sid] = rec
            self.order.append(sid)
        if had_journal:
            self.metrics.counter("service_journal_replays_total").inc()
            self.metrics.gauge("service_journal_corrupt_lines").set(
                state.corrupt_lines)
            if recovered:
                self.metrics.counter("service_jobs_recovered_total").inc(
                    recovered)

    @staticmethod
    def _fold_done(rec: _JobRecord, done: Dict[str, Any]) -> None:
        """Apply a journal ``done`` record to an in-memory job record."""
        outcome = done.get("outcome", "ok")
        rec.state = _OUTCOME_STATE.get(outcome, "error")
        rec.completed = int(done.get("jobs") or done.get("completed") or 0)
        rec.finished_ts = done.get("ts")
        rec.run_id = done.get("run_id") or rec.run_id
        rec.summary = {k: done[k] for k in
                       ("jobs", "errors", "timeouts", "cache_hits",
                        "duration_s", "job_ids") if k in done}
        if done.get("error"):
            rec.error = done["error"]

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (main thread only)."""
        def _drain_signal(signum, frame):
            self.initiate_drain(signal.Signals(signum).name)

        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, _drain_signal)

    def initiate_drain(self, reason: str = "request") -> None:
        """Stop admitting; let in-flight chunks finish; then exit."""
        with self._cond:
            if self.draining:
                return
            self.draining = True
            self.metrics.counter("service_drains_total", reason=reason).inc()
            self._cond.notify_all()

    def serve_forever(self) -> int:
        """Block until a drain completes; returns the process exit code."""
        try:
            while not self._drained.wait(timeout=0.2):
                pass
        except KeyboardInterrupt:  # un-handlered SIGINT (e.g. no signals)
            self.initiate_drain("SIGINT")
            self._drained.wait()
        self._shutdown_http()
        return 0

    def stop(self) -> None:
        """Programmatic drain + shutdown (tests and in-process harness)."""
        self.initiate_drain("stop")
        if self._worker is not None:
            self._worker.join()
        self._drained.set()
        self._shutdown_http()

    def _shutdown_http(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None

    # -- scheduler --------------------------------------------------------
    def _tick_s(self) -> float:
        """Scheduler cadence: fast enough to heartbeat well inside the
        stale bound (holders beat at ≤ a quarter of it)."""
        return max(0.02, min(0.2, self.lock_stale_s / 4.0))

    def _scheduler_loop(self) -> None:
        next_rescan = time.monotonic() + self.rescan_s
        while True:
            with self._cond:
                if self.draining:
                    break
                self._activate_locked()
                self._cond.wait(timeout=self._tick_s())
                draining = self.draining
            self._heartbeat_locks()
            if not draining and self.rescan_s > 0 \
                    and time.monotonic() >= next_rescan:
                self._rescan_journal()
                next_rescan = time.monotonic() + self.rescan_s
        for thread in self._chunk_threads:
            thread.join()
        self._finalize_drain()
        self._drained.set()

    def _activate_locked(self) -> None:
        """Admit queued submissions into execution slots (lock held).

        Contended locks (a sibling daemon owns the submission) park the
        sid with a retry timestamp instead of blocking the scheduler;
        the sid stays queued so ``queue_depth`` and 429 shedding keep
        their meaning.
        """
        if self.draining:
            return
        now = time.monotonic()
        for sid in list(self.queue):
            if len(self._executions) >= self.max_concurrent:
                break
            if self._lock_retry_at.get(sid, 0.0) > now:
                continue
            rec = self.jobs[sid]
            lock = FileLock(self.lock_dir / f"{sid}.lock",
                            owner=self.service_id,
                            stale_after_s=self.lock_stale_s)
            contended = sid in self._lock_retry_at
            if not lock.try_acquire():
                self._lock_retry_at[sid] = now + max(
                    0.05, min(0.5, self.lock_stale_s / 4.0))
                continue
            if contended:
                # The sibling that held this lock may have finished the
                # submission; re-check the journal before re-executing.
                done = self.journal.replay().done.get(sid)
                if done is not None:
                    self._fold_done(rec, done)
                    self.queue.remove(sid)
                    self._lock_retry_at.pop(sid, None)
                    lock.release()
                    continue
            self.queue.remove(sid)
            self._lock_retry_at.pop(sid, None)
            self.metrics.counter("service_lock_acquires_total").inc()
            if lock.takeovers:
                self._lock_takeovers += lock.takeovers
                self.metrics.counter("service_lock_takeovers_total").inc(
                    lock.takeovers)
            rec.state = "running"
            rec.started_ts = time.time()
            rec.run_id = ids.new_run_id()
            self.journal.start(sid, rec.run_id)
            spec = rec.spec
            checkpoint = (self.checkpoint_dir / f"{sid}.jsonl"
                          if spec.kind == "sweep" else None)
            runner = ExperimentRunner(
                cache_dir=self.cache_dir,
                max_workers=self.workers,
                collect_metrics=True,
                ledger=self.ledger,
                ledger_command="service",
                timeout_s=spec.timeout_s if spec.timeout_s is not None
                else self.timeout_s,
                retries=spec.retries or self.retries,
                checkpoint=checkpoint,
                resume=True,
                run_id=rec.run_id,
            )
            execution = _Execution(rec, runner, spec.expand(), lock,
                                   chunk_size=max(1, self.workers) * 2)
            self._executions[sid] = execution
            self._rr.append(sid)
            self._cond.notify_all()

    def _heartbeat_locks(self) -> None:
        with self._lock:
            executions = list(self._executions.values())
        for execution in executions:
            execution.lock.heartbeat()

    def _rescan_journal(self) -> None:
        """Fold sibling daemons' journal records into local state.

        Discovers submissions admitted by other daemons sharing the
        state dir (they become locally queued; the lock decides who
        executes) and applies their ``done`` records to submissions we
        are not executing ourselves.
        """
        state = self.journal.replay()
        discovered = 0
        with self._cond:
            self.metrics.gauge("service_journal_corrupt_lines").set(
                state.corrupt_lines)
            for sid in state.order:
                rec = self.jobs.get(sid)
                done = state.done.get(sid)
                if rec is None:
                    try:
                        spec = JobSpec.from_payload(
                            state.submits[sid].get("spec"))
                    except ValueError:
                        continue
                    rec = _JobRecord(sid, spec)
                    start_rec = state.starts.get(sid)
                    if start_rec is not None:
                        rec.run_id = start_rec.get("run_id")
                    if done is not None:
                        self._fold_done(rec, done)
                    elif sid in state.cancelled:
                        rec.state = "cancelled"
                    else:
                        self.queue.append(sid)
                        discovered += 1
                    self.jobs[sid] = rec
                    self.order.append(sid)
                    continue
                if done is not None and rec.state not in _TERMINAL \
                        and sid not in self._executions:
                    # A sibling finished a submission we were holding as
                    # queued/checkpointed — fold its completion in.
                    self._fold_done(rec, done)
                    try:
                        self.queue.remove(sid)
                    except ValueError:
                        pass
                    self._lock_retry_at.pop(sid, None)
            if discovered:
                self.metrics.counter("service_jobs_discovered_total").inc(
                    discovered)
                self._cond.notify_all()

    # -- chunk workers ----------------------------------------------------
    def _chunk_worker(self) -> None:
        while True:
            with self._cond:
                while not self._rr and not self.draining:
                    self._cond.wait(timeout=0.2)
                if self.draining:
                    break
                sid = self._rr.popleft()
                execution = self._executions.get(sid)
            if execution is not None:
                self._run_chunk(execution)

    def _run_chunk(self, execution: _Execution) -> None:
        rec = execution.rec
        sid = rec.sid
        with self._lock:
            cancelled = sid in self.cancel_requests
        if cancelled:
            self._finalize(execution, cancelled=True)
            return
        if not execution.lock.still_mine():
            self._abandon(execution, "before chunk")
            return
        chunk = execution.jobs[execution.next_index:
                               execution.next_index + execution.chunk_size]
        if not chunk:
            self._finalize(execution)
            return
        with self._lock:
            rec.inflight = len(chunk)
        started = time.monotonic()
        failure: Optional[str] = None
        results: List[Any] = []
        try:
            results = execution.runner.run(chunk)
        except Exception as exc:  # runner-level collapse poisons the domain
            failure = f"{type(exc).__name__}: {exc}"
        wall = time.monotonic() - started
        with self._lock:
            rec.inflight = 0
            rec.wall_s += wall
            execution.results.extend(results)
            execution.next_index += len(chunk)
            rec.completed = len(execution.results)
            for result in results:
                rss = getattr(result, "peak_rss_kb", 0) or 0
                if rss > rec.peak_rss_kb:
                    rec.peak_rss_kb = rss
            if results:
                self._avg_job_s = 0.5 * self._avg_job_s \
                    + 0.5 * (wall / len(results))
            self.metrics.counter("service_chunks_total").inc()
        poison = failure
        if poison is None:
            for result in results:
                outcome = getattr(result, "outcome", "ok")
                if outcome in ("timeout", "invariant"):
                    poison = (f"poisoned by job "
                              f"{getattr(result, 'job_id', '?')}: "
                              f"outcome={outcome}")
                    break
        if poison is not None:
            execution.poison = poison
            self._finalize(execution, poisoned=True)
            return
        if execution.next_index >= len(execution.jobs):
            self._finalize(execution)
            return
        with self._cond:
            if not self.draining:
                self._rr.append(sid)        # back of the ring: round-robin
                self._cond.notify_all()
            # On drain the execution stays registered; the scheduler
            # finalizes it as ``checkpointed`` once workers exit.

    def _abandon(self, execution: _Execution, where: str) -> None:
        """This daemon's claim was superseded: a sibling holds a newer
        fence token.  Stop touching the submission — the new owner
        executes it and writes its journal records; our rescan folds
        the completion in later."""
        rec = execution.rec
        with self._cond:
            self._locks_lost += 1
            self.metrics.counter("service_lock_lost_total").inc()
            self._executions.pop(rec.sid, None)
            rec.state = "checkpointed"
            rec.inflight = 0
            rec.error = f"lock superseded {where}; ceded to new owner"
            self._cond.notify_all()
        execution.lock.release()  # no-op unless still ours

    def _finalize(self, execution: _Execution, cancelled: bool = False,
                  poisoned: bool = False, interrupted: bool = False) -> None:
        rec = execution.rec
        sid = rec.sid
        runner = execution.runner
        results = execution.results
        summary = runner.summary(results)
        job_ids = [r.job_id for r in results if r.job_id][:1024]
        with self._lock:
            if runner.metrics is not None:
                self.metrics.merge(runner.metrics.snapshot())
            if runner.degraded_to_serial:
                self.degraded = True
            rec.completed = len(results)
            rec.inflight = 0
            rec.summary = {
                "jobs": summary["jobs"],
                "errors": summary["errors"],
                "timeouts": summary["timeouts"],
                "cache_hits": summary["cache_hits"],
                "duration_s": round(summary["duration_s"], 6),
                "job_ids": job_ids,
            }
            if cancelled:
                rec.state = "cancelled"
                self.cancel_requests.discard(sid)
            elif poisoned:
                rec.state = "failed"
                rec.error = execution.poison or "poisoned"
            elif interrupted:
                # No ``done`` record: the journal keeps this submission
                # pending and the next incarnation resumes it from the
                # checkpoint/cache.
                rec.state = "checkpointed"
            elif summary["errors"]:
                rec.state = "error"
                first = summary["errored"][0]
                rec.error = f"{summary['errors']} job(s) failed " \
                            f"(first: {first['error']})"
            else:
                rec.state = "done"
                if rec.spec.kind == "experiment" and results:
                    rec.result = results[0].to_json_dict()
            if rec.state in _TERMINAL:
                rec.finished_ts = time.time()
                self.metrics.counter("service_jobs_total",
                                     outcome=rec.state).inc()
        try:
            if rec.state == "cancelled":
                execution.lock.ensure()
                self.journal.done(sid, "cancelled", completed=len(results),
                                  run_id=rec.run_id)
            elif rec.state in ("done", "error", "failed"):
                # Fencing check: if a sibling took the lock over while we
                # were stalled, the submission is theirs now — writing a
                # ``done`` record would race their execution.
                execution.lock.ensure()
                outcome = {"done": "ok", "failed": "failed"}.get(
                    rec.state, "error")
                self.journal.done(
                    sid, outcome,
                    jobs=summary["jobs"], errors=summary["errors"],
                    timeouts=summary["timeouts"],
                    cache_hits=summary["cache_hits"],
                    duration_s=round(summary["duration_s"], 6),
                    run_id=rec.run_id, job_ids=job_ids,
                    **({"error": rec.error} if rec.error else {}))
        except LockLost:
            self._abandon(execution, "at completion")
            return
        execution.lock.release()
        with self._cond:
            self._executions.pop(sid, None)
            self._cond.notify_all()   # a slot freed: scheduler may activate

    def _finalize_drain(self) -> None:
        """After the chunk workers exit on drain, park every live
        execution as ``checkpointed`` and release its lock."""
        with self._lock:
            executions = list(self._executions.values())
        for execution in executions:
            self._finalize(execution, interrupted=True)

    # -- admission --------------------------------------------------------
    def _retry_after_s(self) -> int:
        depth = len(self.queue)
        width = max(1, self.workers * self.max_concurrent)
        estimate = self._avg_job_s * (depth + 1) / width
        return max(1, min(60, int(round(estimate))))

    def submit(self, payload: Any):
        """Admission control; returns ``(status, body, headers)``."""
        try:
            spec = JobSpec.from_payload(payload)
        except ValueError as exc:
            with self._lock:
                self.metrics.counter("service_rejections_total",
                                     reason="invalid").inc()
            return 400, {"error": str(exc)}, {}
        sid = spec.sid
        with self._cond:
            existing = self.jobs.get(sid)
            if existing is not None:
                self.metrics.counter("service_duplicates_total").inc()
                body = existing.brief()
                body["duplicate"] = True
                return 200, body, {}
            if self.draining:
                self.metrics.counter("service_rejections_total",
                                     reason="draining").inc()
                return 503, {"error": "service is draining"}, \
                    {"Retry-After": str(DRAINING_RETRY_AFTER_S)}
            if len(self.queue) >= self.max_queue:
                retry_after = self._retry_after_s()
                self.metrics.counter("service_rejections_total",
                                     reason="overflow").inc()
                return 429, {"error": "queue full",
                             "queue_depth": len(self.queue),
                             "retry_after_s": retry_after}, \
                    {"Retry-After": str(retry_after)}
            if not self.journal.submit(spec):
                self.metrics.counter("service_rejections_total",
                                     reason="journal").inc()
                return 500, {"error": "journal append failed"}, {}
            rec = _JobRecord(sid, spec)
            self.jobs[sid] = rec
            self.order.append(sid)
            self.queue.append(sid)
            self.metrics.counter("service_admissions_total",
                                 kind=spec.kind).inc()
            self._cond.notify_all()
            return 202, rec.brief(), {}

    def cancel(self, sid: str):
        """Cooperative cancel; returns ``(status, body)``."""
        with self._cond:
            rec = self.jobs.get(sid)
            if rec is None:
                return 404, {"error": f"no job {sid!r}"}
            if rec.state == "queued":
                try:
                    self.queue.remove(sid)
                except ValueError:  # pragma: no cover - raced with worker
                    pass
                rec.state = "cancelled"
                rec.finished_ts = time.time()
                self.metrics.counter("service_cancels_total").inc()
                self.metrics.counter("service_jobs_total",
                                     outcome="cancelled").inc()
                self.journal.cancel(sid)
                return 200, rec.brief()
            if rec.state == "running":
                self.cancel_requests.add(sid)
                self.metrics.counter("service_cancels_total").inc()
                self.journal.cancel(sid)
                body = rec.brief()
                body["state"] = "cancelling"
                return 202, body
            return 409, {"error": f"job {sid!r} already {rec.state}"}

    # -- introspection ----------------------------------------------------
    def health(self) -> Dict[str, Any]:
        with self._lock:
            counts: Dict[str, int] = {}
            for rec in self.jobs.values():
                counts[rec.state] = counts.get(rec.state, 0) + 1
            status = ("draining" if self.draining
                      else "degraded" if self.degraded else "live")
            return {
                "status": status,
                "service_id": self.service_id,
                "pid": os.getpid(),
                "uptime_s": round(time.monotonic() - self.started_mono, 3),
                "queue_depth": len(self.queue),
                "in_flight": len(self._executions),
                "max_concurrent": self.max_concurrent,
                "draining": self.draining,
                "degraded": self.degraded,
                "locks": {
                    "held": sum(1 for e in self._executions.values()
                                if e.lock.held),
                    "takeovers": self._lock_takeovers,
                    "lost": self._locks_lost,
                    "stale_after_s": self.lock_stale_s,
                },
                "jobs": counts,
            }

    def exposition(self) -> str:
        """The ``/metrics`` body: service families + live runner metrics."""
        registry = MetricsRegistry()
        with self._lock:
            registry.merge(self.metrics.snapshot())
            registry.gauge("service_queue_depth").set(len(self.queue))
            registry.gauge("service_draining").set(int(self.draining))
            registry.gauge("service_degraded").set(int(self.degraded))
            registry.gauge("service_active_submissions").set(
                len(self._executions))
            registry.gauge("service_inflight_jobs").set(
                sum(e.rec.inflight for e in self._executions.values()))
            registry.gauge("service_locks_held").set(
                sum(1 for e in self._executions.values() if e.lock.held))
            registry.gauge("service_max_concurrent").set(self.max_concurrent)
            runners = [e.runner for e in self._executions.values()]
        for runner in runners:
            try:
                registry.merge(runner.live_metrics().snapshot())
            except Exception:  # a finishing runner must not fail a scrape
                pass
        return export.render_exposition(registry)

    # -- HTTP -------------------------------------------------------------
    def _handler_class(self):
        service = self

        class Handler(BaseHTTPRequestHandler):
            def _send_json(self, status: int, body: Dict[str, Any],
                           headers: Optional[Dict[str, str]] = None) -> None:
                blob = (json.dumps(body, indent=1, sort_keys=True,
                                   default=repr) + "\n").encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(blob)))
                for key, value in (headers or {}).items():
                    self.send_header(key, value)
                self.end_headers()
                self.wfile.write(blob)

            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                if path == "/healthz":
                    self._send_json(200, service.health())
                elif path == "/metrics":
                    blob = service.exposition().encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", export.CONTENT_TYPE)
                    self.send_header("Content-Length", str(len(blob)))
                    self.end_headers()
                    self.wfile.write(blob)
                elif path == "/jobs":
                    with service._lock:
                        body = {"service_id": service.service_id,
                                "jobs": [service.jobs[sid].brief()
                                         for sid in service.order]}
                    self._send_json(200, body)
                elif path.startswith("/jobs/"):
                    sid = path[len("/jobs/"):]
                    with service._lock:
                        rec = service.jobs.get(sid)
                        body = rec.full() if rec is not None else None
                    if body is None:
                        self._send_json(404, {"error": f"no job {sid!r}"})
                    else:
                        self._send_json(200, body)
                else:
                    self._send_json(404, {"error": f"no route {path!r}"})

            def do_POST(self) -> None:  # noqa: N802 (stdlib API name)
                path = self.path.split("?", 1)[0].rstrip("/")
                if path != "/jobs":
                    self._send_json(404, {"error": f"no route {path!r}"})
                    return
                try:
                    length = int(self.headers.get("Content-Length") or 0)
                    payload = json.loads(
                        self.rfile.read(length).decode("utf-8") or "null")
                except (ValueError, UnicodeDecodeError) as exc:
                    self._send_json(400, {"error": f"bad JSON body: {exc}"})
                    return
                status, body, headers = service.submit(payload)
                self._send_json(status, body, headers)

            def do_DELETE(self) -> None:  # noqa: N802 (stdlib API name)
                path = self.path.split("?", 1)[0].rstrip("/")
                if not path.startswith("/jobs/"):
                    self._send_json(404, {"error": f"no route {path!r}"})
                    return
                status, body = service.cancel(path[len("/jobs/"):])
                self._send_json(status, body)

            def log_message(self, *args: Any) -> None:
                pass  # client polls must not spam the daemon's stderr

        return Handler
