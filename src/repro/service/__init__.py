"""The long-running experiment service: ``repro serve``.

The paper's reliability argument is longitudinal — RowHammer,
retention, and disturbance characterization happen continuously, at
fleet scale, not inside one CLI process's lifetime.  This package is
that deployment shape: a crash-tolerant daemon that accepts experiment
and sweep jobs over HTTP/JSON, multiplexes them onto the hardened
:class:`~repro.experiments.runner.ExperimentRunner`, journals every
submission to a crash-safe append-only file, and is explicitly built
to be SIGKILLed and restarted on the same ``--state-dir`` without
losing or double-running work.

Layout:

* :mod:`repro.service.journal` — the append-only job journal and the
  :class:`JobSpec` submission model (idempotent IDs from ``job_key``);
* :mod:`repro.service.daemon` — :class:`ExperimentService`: HTTP
  endpoints, admission control, graceful drain, journal replay;
* :mod:`repro.service.client` — :class:`ServiceClient` with bounded
  retry/backoff (honors ``Retry-After``), used by ``repro submit`` and
  ``repro jobs``.
"""

from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.service.daemon import DEFAULT_SERVICE_PORT, ExperimentService
from repro.service.journal import JOURNAL_SCHEMA, JobJournal, JobSpec

__all__ = [
    "DEFAULT_SERVICE_PORT",
    "JOURNAL_SCHEMA",
    "ExperimentService",
    "JobJournal",
    "JobSpec",
    "ServiceClient",
    "ServiceError",
    "ServiceTimeout",
    "ServiceUnavailable",
]
