"""Access-stream generators: benign workloads and attacker loops.

Benign streams price mitigations (what does PARA/refresh-scaling cost
a normal program?); attacker streams drive the security experiments.
Traces are lists of :class:`~repro.controller.request.MemRequest` for
the scheduler, or (bank, row, is_write) tuples for the controller's
command path.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.controller.request import MemRequest
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive

Trace = List[Tuple[int, int, bool]]


def sequential_stream(
    n: int, banks: int, rows: int, request_interval_ns: float = 20.0, write_fraction: float = 0.0
) -> List[MemRequest]:
    """Streaming workload: walk rows sequentially, rotating across banks.

    Maximizes row-buffer hits — the workload class most sensitive to
    refresh interruptions.
    """
    check_positive("n", n)
    out = []
    for i in range(n):
        bank = (i // 64) % banks
        row = (i // (64 * banks)) % rows
        out.append(
            MemRequest(
                arrival_ns=i * request_interval_ns,
                bank=bank,
                row=row,
                is_write=(i % max(1, int(1 / write_fraction)) == 0) if write_fraction > 0 else False,
            )
        )
    return out


def random_access(
    n: int, banks: int, rows: int, request_interval_ns: float = 20.0, seed: int = 0
) -> List[MemRequest]:
    """Uniformly random (bank, row) requests — row-buffer hostile."""
    check_positive("n", n)
    rng = derive_rng(seed, "random-access")
    bank_picks = rng.integers(0, banks, size=n)
    row_picks = rng.integers(0, rows, size=n)
    writes = rng.random(n) < 0.3
    return [
        MemRequest(arrival_ns=i * request_interval_ns, bank=int(b), row=int(r), is_write=bool(w))
        for i, (b, r, w) in enumerate(zip(bank_picks, row_picks, writes))
    ]


def hotspot(
    n: int,
    banks: int,
    rows: int,
    request_interval_ns: float = 20.0,
    zipf_a: float = 1.3,
    seed: int = 0,
) -> List[MemRequest]:
    """Zipf-skewed row popularity — a few hot rows dominate (databases,
    key-value stores).  Hot benign rows are what naive activation-count
    detectors must not confuse with aggressors."""
    check_positive("n", n)
    rng = derive_rng(seed, "hotspot")
    ranks = rng.zipf(zipf_a, size=n)
    row_picks = (ranks - 1) % rows
    bank_picks = rng.integers(0, banks, size=n)
    return [
        MemRequest(arrival_ns=i * request_interval_ns, bank=int(b), row=int(r), is_write=False)
        for i, (b, r) in enumerate(zip(bank_picks, row_picks))
    ]


def attacker_rounds(bank: int, aggressors, iterations: int) -> Trace:
    """The hammer loop as a controller trace: interleaved reads of the
    aggressor rows, ``iterations`` rounds."""
    check_positive("iterations", iterations)
    trace: Trace = []
    for _ in range(iterations):
        for row in aggressors:
            trace.append((bank, row, False))
    return trace


def mixed_with_attacker(
    benign: List[MemRequest], bank: int, aggressors, attacker_share: float = 0.5, seed: int = 0
) -> Trace:
    """Interleave a benign trace with an attacker loop (ANVIL's detection
    scenario: spotting the hammer inside normal traffic)."""
    rng = derive_rng(seed, "mixed")
    trace: Trace = []
    agg_idx = 0
    for req in benign:
        trace.append((req.bank, req.row, req.is_write))
        while rng.random() < attacker_share:
            trace.append((bank, aggressors[agg_idx % len(aggressors)], False))
            agg_idx += 1
    return trace
