"""Benign and adversarial access-stream generators."""

from repro.workloads.generators import (
    Trace,
    attacker_rounds,
    hotspot,
    mixed_with_attacker,
    random_access,
    sequential_stream,
)

__all__ = [
    "Trace",
    "attacker_rounds",
    "hotspot",
    "mixed_with_attacker",
    "random_access",
    "sequential_stream",
]
