"""DRAM data-retention modeling: DPD, VRT, profiling, RAIDR, AVATAR."""

from repro.retention.avatar import AvatarResult, simulate_avatar
from repro.retention.online_profiling import OnlineProfilingResult, coverage_over_generations, simulate_online_profiling
from repro.retention.params import DEFAULT_RETENTION, LEGACY_NODE, SCALED_NODE, RetentionParams
from repro.retention.population import CellPopulation
from repro.retention.profiling import ProfilingResult, field_escapes, profile_population
from repro.retention.raidr import (
    DEFAULT_BINS_S,
    RaidrAssignment,
    assign_bins,
    runtime_escape_cells,
)
from repro.retention.vrt import VrtProcess

__all__ = [
    "AvatarResult",
    "simulate_avatar",
    "OnlineProfilingResult",
    "coverage_over_generations",
    "simulate_online_profiling",
    "DEFAULT_RETENTION",
    "LEGACY_NODE",
    "SCALED_NODE",
    "RetentionParams",
    "CellPopulation",
    "ProfilingResult",
    "field_escapes",
    "profile_population",
    "DEFAULT_BINS_S",
    "RaidrAssignment",
    "assign_bins",
    "runtime_escape_cells",
    "VrtProcess",
]
