"""Variable Retention Time: a two-state memoryless toggling process.

Each VRT cell alternates between a HIGH-retention state and a
LOW-retention state.  Dwell times are exponential (the paper calls the
process "memoryless"; the underlying physics is trap-assisted
gate-induced drain leakage).  The simulator keeps, per VRT cell, its
current state and the time of its next transition, and advances the
ensemble in (possibly large) time steps.
"""

from __future__ import annotations

import numpy as np


class VrtProcess:
    """Ensemble of two-state VRT cells.

    Args:
        n_cells: number of VRT cells tracked.
        mean_dwell_s: mean exponential dwell time per state (seconds).
        low_occupancy: stationary probability of the LOW state; the LOW
            dwell mean is scaled so the chain is stationary at this
            occupancy.
        rng: randomness source.
    """

    def __init__(
        self,
        n_cells: int,
        mean_dwell_s: float,
        low_occupancy: float,
        rng: np.random.Generator,
    ) -> None:
        if n_cells < 0:
            raise ValueError("n_cells must be >= 0")
        self.n_cells = n_cells
        self.rng = rng
        # Stationary occupancy pi_low = dwell_low / (dwell_low + dwell_high).
        self.dwell_high_s = mean_dwell_s
        self.dwell_low_s = mean_dwell_s * low_occupancy / max(1e-12, 1.0 - low_occupancy)
        self.low = rng.random(n_cells) < low_occupancy
        self.time_s = 0.0
        self._next_transition = self.time_s + self._draw_dwell(self.low)

    def _draw_dwell(self, low_mask: np.ndarray) -> np.ndarray:
        if self.n_cells == 0:
            return np.empty(0)
        means = np.where(low_mask, self.dwell_low_s, self.dwell_high_s)
        return self.rng.exponential(means)

    def advance(self, dt_s: float) -> None:
        """Advance simulated time by ``dt_s`` seconds, toggling cells whose
        transitions fall in the window (possibly multiple times)."""
        if dt_s < 0:
            raise ValueError("dt_s must be >= 0")
        target = self.time_s + dt_s
        if self.n_cells == 0:
            self.time_s = target
            return
        # Iterate: cells whose next transition is before `target` toggle and
        # redraw.  A handful of iterations suffice for dwell >> dt.
        pending = self._next_transition <= target
        while np.any(pending):
            idx = np.nonzero(pending)[0]
            self.low[idx] = ~self.low[idx]
            self._next_transition[idx] += self._draw_dwell(self.low[idx])
            pending = self._next_transition <= target
        self.time_s = target

    def low_mask(self) -> np.ndarray:
        """Boolean mask of cells currently in the LOW-retention state."""
        return self.low.copy()

    def ever_low_during(self, dt_s: float) -> np.ndarray:
        """Advance by ``dt_s`` and report cells that were LOW at any point
        in the window (the set at risk during one retention interval)."""
        if self.n_cells == 0:
            self.time_s += dt_s
            return np.empty(0, dtype=bool)
        target = self.time_s + dt_s
        ever = self.low.copy()
        pending = self._next_transition <= target
        while np.any(pending):
            idx = np.nonzero(pending)[0]
            self.low[idx] = ~self.low[idx]
            ever[idx] |= self.low[idx]
            self._next_transition[idx] += self._draw_dwell(self.low[idx])
            pending = self._next_transition <= target
        self.time_s = target
        return ever
