"""Retention-time profiling: the multi-round test campaign.

Models the manufacturing/system-level retention test the paper argues
is fundamentally unreliable: write a pattern, pause refresh for the
test interval, read back, record failing cells; repeat for several
rounds and patterns.  Two escape mechanisms are captured:

* **DPD escapes** — the test pattern exercised only a subset of cells'
  worst-case coupling (modeled as each round revealing a DPD cell's
  worst case only with probability ``pattern_coverage``);
* **VRT escapes** — a VRT cell in its HIGH state passes every round,
  then drops into its LOW state in the field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

import numpy as np

from repro.retention.population import CellPopulation
from repro.telemetry import runtime as telem
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class ProfilingResult:
    """Outcome of a profiling campaign.

    Attributes:
        discovered: indices of cells observed to fail at least once.
        rounds: number of rounds executed.
        test_interval_s: the retention interval tested.
        round_discoveries: newly discovered cells per round.
        observed_retention_s: per-cell minimum retention *as observed by
            the campaign* — ``inf``-free: cells never caught failing keep
            their best-case (nominal) appearance.  This is what a
            multi-rate refresh policy like RAIDR would bin rows with.
    """

    discovered: Set[int]
    rounds: int
    test_interval_s: float
    round_discoveries: List[int] = field(default_factory=list)
    observed_retention_s: np.ndarray = field(default_factory=lambda: np.empty(0))


def profile_population(
    population: CellPopulation,
    test_interval_s: float,
    rounds: int = 8,
    pattern_coverage: float = 0.6,
    round_spacing_s: float = 120.0,
    seed: int = 0,
) -> ProfilingResult:
    """Run a multi-round retention test campaign.

    Args:
        population: cells under test.
        test_interval_s: refresh-paused interval each round (e.g. a
            guardbanded multiple of 64 ms).
        rounds: number of write/wait/read rounds.
        pattern_coverage: per-round probability that a DPD cell's
            worst-case neighborhood is exercised by the round's pattern.
        round_spacing_s: wall-clock spacing between rounds (VRT cells
            evolve in between).
        seed: test-pattern randomness.
    """
    check_positive("test_interval_s", test_interval_s)
    check_positive("rounds", rounds)
    check_probability("pattern_coverage", pattern_coverage)
    rng = derive_rng(seed, "profiling")
    discovered: Set[int] = set()
    observed = population.nominal_s.copy()
    result = ProfilingResult(
        discovered=discovered,
        rounds=rounds,
        test_interval_s=test_interval_s,
        observed_retention_s=observed,
    )
    with telem.span("retention.profile"):
        for _ in range(rounds):
            # VRT cells toggle between rounds; a cell LOW at any point during
            # the test interval is at risk of being caught this round.
            vrt_low = population.vrt.ever_low_during(round_spacing_s)
            times = population.nominal_s.copy()
            # This round's pattern hits each DPD cell's worst case with
            # probability `pattern_coverage`; otherwise retention looks nominal.
            dpd_hit = rng.random(population.n_cells) < pattern_coverage
            times = np.where(dpd_hit, times * population.dpd_factor, times)
            if len(population.vrt_indices):
                low_cells = population.vrt_indices[vrt_low]
                times[low_cells] *= population.params.vrt_low_factor
            np.minimum(observed, times, out=observed)
            failing = np.nonzero(times < test_interval_s)[0]
            new = [int(i) for i in failing if int(i) not in discovered]
            discovered.update(new)
            result.round_discoveries.append(len(new))
    return result


def field_escapes(
    population: CellPopulation,
    profiling: ProfilingResult,
    field_refresh_interval_s: float,
    observation_s: float = 24 * 3600.0,
    check_every_s: float = 600.0,
) -> Set[int]:
    """Cells that fail in the field despite passing profiling.

    Simulates ``observation_s`` seconds of deployment with the
    worst-case data pattern resident (runtime data is adversarial) and
    the VRT ensemble evolving; any cell whose effective retention drops
    below the deployed refresh interval, and which profiling did not
    discover, is an escape.
    """
    check_positive("field_refresh_interval_s", field_refresh_interval_s)
    escapes: Set[int] = set()
    steps = max(1, int(observation_s / check_every_s))
    with telem.span("retention.field_escapes"):
        for _ in range(steps):
            vrt_low = population.vrt.ever_low_during(check_every_s)
            failing = population.failing_cells(
                field_refresh_interval_s, worst_case_pattern=True, vrt_low_mask=vrt_low
            )
            escapes.update(int(i) for i in failing if int(i) not in profiling.discovered)
    return escapes
