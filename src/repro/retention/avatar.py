"""AVATAR: VRT-aware multi-rate refresh (Qureshi+, DSN 2015).

AVATAR starts from a RAIDR-style binning but treats profiling as
*provisional*: ECC-equipped scrubbing detects cells that start failing
in the field (e.g. a VRT cell dropping into its LOW state) and
*upgrades* their rows to the fastest refresh bin.  Escapes therefore
decay over deployment time instead of persisting, which is the
comparison the retention bench makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.retention.population import CellPopulation
from repro.retention.raidr import RaidrAssignment
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class AvatarResult:
    """Day-by-day outcome of an AVATAR simulation.

    Attributes:
        daily_escapes: uncorrectable escapes observed each day (cells
            that failed and were *not* caught by scrub-and-upgrade).
        daily_upgrades: rows upgraded to the fast bin each day.
        final_row_bin: row bins at the end of the simulation.
        refreshes_per_second_final: refresh cost after upgrades.
    """

    daily_escapes: List[int] = field(default_factory=list)
    daily_upgrades: List[int] = field(default_factory=list)
    final_row_bin: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    refreshes_per_second_final: float = 0.0

    @property
    def total_escapes(self) -> int:
        return int(sum(self.daily_escapes))


def simulate_avatar(
    population: CellPopulation,
    assignment: RaidrAssignment,
    days: int = 7,
    scrub_interval_s: float = 3600.0,
    detect_probability: float = 0.95,
    seed: int = 0,
) -> AvatarResult:
    """Simulate AVATAR scrub-and-upgrade over a deployment period.

    Each scrub interval: advance VRT, find cells whose effective
    retention is below their row's current interval.  With
    ``detect_probability`` the ECC scrub catches the failure (single-bit
    at scrub time) and upgrades the row to bin 0; otherwise the failure
    counts as an escape for the day.

    Args:
        population: cell population (VRT state advances in place).
        assignment: initial RAIDR binning (not mutated).
        days: deployment days to simulate.
        scrub_interval_s: scrub period.
        detect_probability: per-event scrub detection probability.
        seed: detection randomness.
    """
    check_positive("days", days)
    check_positive("scrub_interval_s", scrub_interval_s)
    check_probability("detect_probability", detect_probability)
    rng = derive_rng(seed, "avatar")
    bins_s = np.asarray(assignment.bins_s)
    row_bin = assignment.row_bin.copy()
    result = AvatarResult()
    scrubs_per_day = max(1, int(24 * 3600.0 / scrub_interval_s))
    handled: set = set()
    for _ in range(days):
        escapes_today = 0
        upgrades_today = 0
        for _ in range(scrubs_per_day):
            vrt_low = population.vrt.ever_low_during(scrub_interval_s)
            times = population.retention_s(worst_case_pattern=True, vrt_low_mask=vrt_low)
            cell_interval = np.repeat(bins_s[row_bin], population.cells_per_row)
            failing = np.nonzero(times < cell_interval)[0]
            for cell in failing:
                cell = int(cell)
                if cell in handled:
                    # Already escaped once and repaired (remap/stronger
                    # ECC), or its row is already at the fastest rate.
                    continue
                row = cell // population.cells_per_row
                if row_bin[row] == 0:
                    # Fails even at the base rate: a true retention
                    # failure — one escape, then the cell is remapped.
                    escapes_today += 1
                    handled.add(cell)
                    continue
                if rng.random() < detect_probability:
                    row_bin[row] = 0
                    upgrades_today += 1
                else:
                    escapes_today += 1
                    handled.add(cell)
        result.daily_escapes.append(escapes_today)
        result.daily_upgrades.append(upgrades_today)
    result.final_row_bin = row_bin
    result.refreshes_per_second_final = float(np.sum(1.0 / bins_s[row_bin]))
    return result
