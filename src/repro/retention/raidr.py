"""RAIDR: Retention-Aware Intelligent DRAM Refresh (Liu+, ISCA 2012).

Rows are binned by their weakest profiled cell and refreshed at the
largest safe power-of-two multiple of the base interval, eliminating
most refresh operations.  The paper's §III-A1 caveat is the point of
the reproduction: DPD and VRT let cells *escape* profiling, so a row
may be placed in a slow bin whose interval its true (runtime) weakest
cell cannot sustain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.retention.population import CellPopulation
from repro.utils.validation import check_positive

#: Standard RAIDR bin ladder: 64 ms, 128 ms, 256 ms.
DEFAULT_BINS_S = (0.064, 0.128, 0.256)


@dataclass
class RaidrAssignment:
    """Row-to-bin assignment produced by :func:`assign_bins`.

    Attributes:
        bins_s: refresh interval of each bin (ascending).
        row_bin: per-row bin index.
        guardband: safety factor applied to profiled retention.
    """

    bins_s: Sequence[float]
    row_bin: np.ndarray
    guardband: float

    @property
    def rows(self) -> int:
        return len(self.row_bin)

    def row_interval_s(self) -> np.ndarray:
        """Per-row refresh interval in seconds."""
        return np.asarray(self.bins_s)[self.row_bin]

    def refreshes_per_second(self) -> float:
        """Row-refresh operations per second under this assignment."""
        return float(np.sum(1.0 / self.row_interval_s()))

    def baseline_refreshes_per_second(self) -> float:
        """Row refreshes per second with everything at the base interval."""
        return self.rows / float(self.bins_s[0])

    def savings_fraction(self) -> float:
        """Fraction of refresh operations eliminated vs the baseline."""
        base = self.baseline_refreshes_per_second()
        return 1.0 - self.refreshes_per_second() / base

    def bin_counts(self) -> List[int]:
        """Number of rows in each bin."""
        return [int(np.sum(self.row_bin == b)) for b in range(len(self.bins_s))]


def assign_bins(
    population: CellPopulation,
    observed_retention_s: np.ndarray,
    bins_s: Sequence[float] = DEFAULT_BINS_S,
    guardband: float = 2.0,
) -> RaidrAssignment:
    """Bin rows by profiled (observed) weakest-cell retention.

    Args:
        population: provides the row organization.
        observed_retention_s: per-cell retention as seen by profiling
            (:attr:`ProfilingResult.observed_retention_s`).
        bins_s: ascending bin intervals; bin 0 is the always-safe base.
        guardband: a row needs observed retention >= guardband * interval
            to be placed in a bin.
    """
    check_positive("guardband", guardband)
    if list(bins_s) != sorted(bins_s):
        raise ValueError("bins_s must be ascending")
    row_min = observed_retention_s.reshape(population.rows, population.cells_per_row).min(axis=1)
    row_bin = np.zeros(population.rows, dtype=np.int64)
    for b, interval in enumerate(bins_s):
        row_bin[row_min >= guardband * interval] = b
    return RaidrAssignment(bins_s=tuple(bins_s), row_bin=row_bin, guardband=guardband)


def runtime_escape_cells(
    population: CellPopulation,
    assignment: RaidrAssignment,
    observation_s: float = 24 * 3600.0,
    check_every_s: float = 600.0,
) -> np.ndarray:
    """Cells that fail in the field under the RAIDR assignment.

    Runs the VRT ensemble forward and, at each check, flags cells whose
    current effective retention (worst-case resident data) is below
    their row's assigned refresh interval.  Returns unique cell indices.
    """
    check_positive("observation_s", observation_s)
    row_interval = assignment.row_interval_s()
    cell_interval = np.repeat(row_interval, population.cells_per_row)
    escapes: set = set()
    steps = max(1, int(observation_s / check_every_s))
    for _ in range(steps):
        vrt_low = population.vrt.ever_low_during(check_every_s)
        times = population.retention_s(worst_case_pattern=True, vrt_low_mask=vrt_low)
        failing = np.nonzero(times < cell_interval)[0]
        escapes.update(int(i) for i in failing)
    return np.array(sorted(escapes), dtype=np.int64)
