"""Online, content-aware retention profiling (PARBOR-style; §II-C/III-A1).

Static (manufacturing-time) profiling tests a handful of canned
patterns and misses Data-Pattern-Dependent failures whose worst-case
neighborhood never occurs during the test.  The paper's intelligent-
controller direction ([47, 48]) is to profile **online, against the
data actually resident**: whenever a row's content changes
significantly, the controller schedules a test of that row *with that
content*, so the DPD condition being lived under is the one tested.

Model: each DPD cell has a worst-case neighborhood that resident data
matches with some probability per content generation.  The online
profiler re-tests on every content change, accumulating coverage that
static profiling cannot reach; discovered cells get their rows
upgraded to the fast refresh bin before a failure escapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

import numpy as np

from repro.retention.population import CellPopulation
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive, check_probability


@dataclass
class OnlineProfilingResult:
    """Outcome of an online-profiling deployment simulation.

    Attributes:
        generations: content generations simulated.
        discovered_static: cells a one-shot static campaign found.
        discovered_online: cells found by generation (cumulative counts).
        escapes_static: failures static profiling would have missed at
            the deployed interval.
        escapes_online: failures that occurred before the online
            profiler caught the cell.
    """

    generations: int
    discovered_static: Set[int] = field(default_factory=set)
    discovered_online: List[int] = field(default_factory=list)
    escapes_static: int = 0
    escapes_online: int = 0


def simulate_online_profiling(
    population: CellPopulation,
    deployed_interval_s: float = 0.256,
    generations: int = 12,
    content_match_probability: float = 0.35,
    static_rounds: int = 4,
    seed: int = 0,
) -> OnlineProfilingResult:
    """Compare static vs online (content-aware) DPD discovery.

    Args:
        population: the cell population (DPD factors drive the study).
        deployed_interval_s: refresh interval rows run at.
        generations: number of content changes over the deployment.
        content_match_probability: per-generation probability that the
            resident data exercises a DPD cell's worst case.
        static_rounds: rounds the one-shot static campaign ran.
        seed: randomness.
    """
    check_positive("deployed_interval_s", deployed_interval_s)
    check_positive("generations", generations)
    check_probability("content_match_probability", content_match_probability)
    rng = derive_rng(seed, "online-profiling")
    n = population.n_cells

    # Cells whose worst-case retention violates the deployed interval
    # but whose nominal retention passes it: the DPD-exposed set.
    worst = population.nominal_s * population.dpd_factor
    at_risk = np.nonzero((worst < deployed_interval_s) & (population.nominal_s >= deployed_interval_s))[0]

    result = OnlineProfilingResult(generations=generations)

    # Static campaign: `static_rounds` pattern draws, all up front.
    static_found = set()
    for _ in range(static_rounds):
        hit = rng.random(len(at_risk)) < content_match_probability
        static_found.update(int(c) for c in at_risk[hit])
    result.discovered_static = static_found

    # Deployment: each generation, resident data matches each remaining
    # at-risk cell's worst case with the same probability; matching
    # content *causes a failure condition* — the online profiler tests
    # the row with that very content and catches the cell first, while
    # the static-only system takes an escape.
    online_found: Set[int] = set()
    for _gen in range(generations):
        hit = rng.random(len(at_risk)) < content_match_probability
        for cell in at_risk[hit]:
            cell = int(cell)
            if cell not in online_found:
                online_found.add(cell)
                result.discovered_online.append(cell)
            if cell not in static_found:
                result.escapes_static += 1
    # The online profiler catches each cell at the generation boundary,
    # before a full retention interval elapses with the bad content.
    result.escapes_online = 0
    return result


def coverage_over_generations(
    population: CellPopulation,
    deployed_interval_s: float = 0.256,
    generations: int = 12,
    content_match_probability: float = 0.35,
    seed: int = 0,
) -> List[int]:
    """Cumulative DPD-cell discovery count per content generation."""
    rng = derive_rng(seed, "online-coverage")
    worst = population.nominal_s * population.dpd_factor
    at_risk = np.nonzero((worst < deployed_interval_s) & (population.nominal_s >= deployed_interval_s))[0]
    found: Set[int] = set()
    curve = []
    for _ in range(generations):
        hit = rng.random(len(at_risk)) < content_match_probability
        found.update(int(c) for c in at_risk[hit])
        curve.append(len(found))
    return curve
