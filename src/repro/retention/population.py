"""A population of DRAM cells with retention times, DPD, and VRT.

The population is organized as ``rows x cells_per_row`` so row-granular
refresh policies (RAIDR, AVATAR) can bin rows by their weakest cell.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.retention.params import RetentionParams
from repro.retention.vrt import VrtProcess
from repro.utils.rng import derive_rng


class CellPopulation:
    """Retention-time population of one DRAM region.

    Args:
        rows: number of rows.
        cells_per_row: cells in each row.
        params: distribution parameters.
        seed: deterministic seed for this population.
    """

    def __init__(
        self,
        rows: int,
        cells_per_row: int,
        params: RetentionParams = RetentionParams(),
        seed: int = 0,
    ) -> None:
        if rows <= 0 or cells_per_row <= 0:
            raise ValueError("rows and cells_per_row must be positive")
        self.rows = rows
        self.cells_per_row = cells_per_row
        self.params = params
        self.seed = seed
        rng = derive_rng(seed, "retention")
        n = rows * cells_per_row
        self.n_cells = n

        # Bulk lognormal retention, with a uniform-in-log weak tail mixed in.
        mu = np.log(params.median_s)
        times = np.exp(rng.normal(mu, params.sigma, size=n))
        tail_mask = rng.random(n) < params.tail_fraction
        n_tail = int(tail_mask.sum())
        if n_tail:
            log_lo, log_hi = np.log(params.tail_min_s), np.log(params.tail_max_s)
            times[tail_mask] = np.exp(rng.uniform(log_lo, log_hi, size=n_tail))
        self.nominal_s = times

        # DPD: worst-case pattern multiplier < 1 for a fraction of cells.
        self.dpd_factor = np.ones(n)
        dpd_mask = rng.random(n) < params.dpd_fraction
        n_dpd = int(dpd_mask.sum())
        if n_dpd:
            self.dpd_factor[dpd_mask] = rng.uniform(params.dpd_min_factor, 1.0, size=n_dpd)

        # VRT: a sparse subset tracked by an explicit two-state process.
        vrt_mask = rng.random(n) < params.vrt_fraction
        self.vrt_indices = np.nonzero(vrt_mask)[0]
        self.vrt = VrtProcess(
            n_cells=len(self.vrt_indices),
            mean_dwell_s=params.vrt_mean_dwell_s,
            low_occupancy=params.vrt_low_occupancy,
            rng=derive_rng(seed, "vrt"),
        )

    # ------------------------------------------------------------------
    # Retention queries
    # ------------------------------------------------------------------
    def retention_s(
        self,
        worst_case_pattern: bool = True,
        vrt_low_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Effective per-cell retention times.

        Args:
            worst_case_pattern: whether the stored data pattern is the
                worst case for DPD cells (runtime data is adversarial;
                a specific test pattern may not be).
            vrt_low_mask: boolean mask over the *VRT subset* indicating
                which VRT cells are in the LOW state; ``None`` uses the
                process's current state.
        """
        times = self.nominal_s.copy()
        if worst_case_pattern:
            times *= self.dpd_factor
        if len(self.vrt_indices):
            if vrt_low_mask is None:
                vrt_low_mask = self.vrt.low_mask()
            low_cells = self.vrt_indices[vrt_low_mask]
            times[low_cells] *= self.params.vrt_low_factor
        return times

    def failing_cells(
        self,
        refresh_interval_s: float,
        worst_case_pattern: bool = True,
        vrt_low_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Indices of cells that lose data at the given refresh interval."""
        times = self.retention_s(worst_case_pattern, vrt_low_mask)
        return np.nonzero(times < refresh_interval_s)[0]

    # ------------------------------------------------------------------
    # Row granularity
    # ------------------------------------------------------------------
    def row_of(self, cell_indices: np.ndarray) -> np.ndarray:
        """Map cell indices to their row indices."""
        return np.asarray(cell_indices) // self.cells_per_row

    def row_min_retention(self, worst_case_pattern: bool = True) -> np.ndarray:
        """Per-row weakest-cell retention, at current VRT state."""
        times = self.retention_s(worst_case_pattern)
        return times.reshape(self.rows, self.cells_per_row).min(axis=1)

    def advance_time(self, dt_s: float) -> None:
        """Advance the VRT process by ``dt_s`` seconds."""
        self.vrt.advance(dt_s)
