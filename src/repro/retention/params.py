"""Retention-time model parameters.

Calibrated to the qualitative findings of the experimental DRAM
retention studies the paper cites (ISCA 2013 [69], SIGMETRICS 2014
[46], DSN 2015 [84]):

* the vast majority of cells retain data for many seconds — orders of
  magnitude beyond the 64 ms refresh standard;
* a sparse tail of *weak* cells sits near or below typical multi-rate
  refresh intervals (hundreds of ms);
* Data Pattern Dependence (DPD): a cell's retention depends on the
  data in neighboring cells — the worst-case pattern can cut retention
  severalfold, so testing with the wrong pattern overestimates it;
* Variable Retention Time (VRT): a small population of cells toggles
  between a high- and a low-retention state via a memoryless process
  with dwell times of minutes to hours, making them nearly impossible
  to catch in a bounded test campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_in_range, check_positive, check_probability


@dataclass(frozen=True)
class RetentionParams:
    """Parameters of the per-cell retention-time population.

    Attributes:
        median_s: median retention time of the bulk lognormal (seconds).
        sigma: lognormal shape of the bulk.
        tail_fraction: fraction of cells in the weak tail.
        tail_min_s: weakest tail retention (seconds).
        tail_max_s: strongest tail retention (seconds).
        dpd_fraction: fraction of cells whose retention is data-pattern
            dependent.
        dpd_min_factor: worst-case retention multiplier for DPD cells
            (uniform in [dpd_min_factor, 1)).
        vrt_fraction: fraction of cells exhibiting VRT.
        vrt_low_factor: retention multiplier while in the VRT low state.
        vrt_mean_dwell_s: mean dwell time in each VRT state (seconds).
        vrt_low_occupancy: stationary probability of the low state.
    """

    median_s: float = 30.0
    sigma: float = 0.8
    tail_fraction: float = 3.0e-5
    tail_min_s: float = 0.048
    tail_max_s: float = 2.0
    dpd_fraction: float = 0.5
    dpd_min_factor: float = 0.3
    vrt_fraction: float = 1.0e-5
    vrt_low_factor: float = 0.15
    vrt_mean_dwell_s: float = 1800.0
    vrt_low_occupancy: float = 0.2

    def __post_init__(self) -> None:
        check_positive("median_s", self.median_s)
        check_positive("sigma", self.sigma)
        check_probability("tail_fraction", self.tail_fraction)
        check_positive("tail_min_s", self.tail_min_s)
        if self.tail_max_s < self.tail_min_s:
            raise ValueError("tail_max_s must be >= tail_min_s")
        check_probability("dpd_fraction", self.dpd_fraction)
        check_in_range("dpd_min_factor", self.dpd_min_factor, 0.01, 1.0)
        check_probability("vrt_fraction", self.vrt_fraction)
        check_in_range("vrt_low_factor", self.vrt_low_factor, 0.01, 1.0)
        check_positive("vrt_mean_dwell_s", self.vrt_mean_dwell_s)
        check_probability("vrt_low_occupancy", self.vrt_low_occupancy)


#: Default population resembling a scaled (vulnerable) DRAM node.
DEFAULT_RETENTION = RetentionParams()

#: An older, comfortable node: stronger cells, negligible tail.
LEGACY_NODE = RetentionParams(median_s=90.0, tail_fraction=2.0e-6, tail_min_s=0.3, vrt_fraction=2.0e-6)

#: An aggressively scaled node: bigger tail, more DPD/VRT — the trend
#: direction the paper warns about.
SCALED_NODE = RetentionParams(
    median_s=12.0,
    tail_fraction=1.2e-4,
    tail_min_s=0.032,
    dpd_fraction=0.7,
    dpd_min_factor=0.2,
    vrt_fraction=5.0e-5,
)
