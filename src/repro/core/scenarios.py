"""Canonical experiment scenarios.

Two fidelity levels, chosen per experiment:

* **Full-scale device scenarios** — real DDR3 window (64 ms, ~1.3M
  activations): used with the exact *device path* (bulk activation
  accounting), where a hammer session costs O(#aggressors).
* **Scaled controller scenarios** — every time constant *and* every
  hammer threshold divided by the same factor, preserving the
  budget/threshold ratios exactly while making per-command simulation
  through the full controller pipeline affordable.  This is the
  standard scaled-simulation methodology; the invariance is checked by
  an integration test (same flip counts, scaled run time).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dram.disturbance import VulnerabilityProfile
from repro.dram.geometry import DramGeometry
from repro.dram.module import DramModule
from repro.dram.timing import DDR3_1333, TimingParams
from repro.dram.vintage import profile_for
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Scenario:
    """A reproducible module-under-attack configuration."""

    geometry: DramGeometry
    timing: TimingParams
    profile: VulnerabilityProfile
    scale: float = 1.0

    def make_module(self, serial: str = "S0", seed: int = 0, **kwargs) -> DramModule:
        """Instantiate the scenario's module."""
        return DramModule(
            geometry=self.geometry,
            timing=self.timing,
            profile=self.profile,
            serial=serial,
            seed=seed,
            **kwargs,
        )

    @property
    def attack_budget(self) -> int:
        """Single-row activations per refresh window."""
        return int(self.timing.tREFW / self.timing.tRC)


def full_scale_scenario(manufacturer: str = "B", date: float = 2013.0) -> Scenario:
    """The unscaled device-path scenario for a vintage module."""
    return Scenario(
        geometry=DramGeometry(banks=8, rows=32768, row_bytes=8192),
        timing=DDR3_1333,
        profile=profile_for(manufacturer, date),
        scale=1.0,
    )


def scaled_scenario(
    scale: float = 20.0,
    manufacturer: str = "B",
    date: float = 2013.0,
    rows: int = 4096,
    density_boost: float = 1.0,
) -> Scenario:
    """Controller-path scenario with time and thresholds scaled by ``scale``.

    The refresh window shrinks by ``scale`` and every hammer threshold
    shrinks by the same factor, so budget/threshold ratios — and hence
    which cells flip under which mitigation — are preserved while a
    full window costs ``~65K`` instead of ``~1.3M`` simulated commands.
    """
    check_positive("scale", scale)
    base = profile_for(manufacturer, date)
    profile = replace(
        base,
        weak_cell_density=min(1.0, base.weak_cell_density * density_boost),
        hc_first_median=base.hc_first_median / scale,
        hc_first_min=base.hc_first_min / scale,
    )
    timing = replace(DDR3_1333, tREFW=DDR3_1333.tREFW / scale)
    return Scenario(
        geometry=DramGeometry(banks=2, rows=rows, row_bytes=8192),
        timing=timing,
        profile=profile,
        scale=scale,
    )
