"""Core composition layer: scenarios, the MemorySystem facade, experiments."""

from repro.core.config import SystemConfig
from repro.core.scenarios import Scenario, full_scale_scenario, scaled_scenario
from repro.core.system import MITIGATIONS, MemorySystem, SystemReport

__all__ = [
    "SystemConfig",
    "Scenario",
    "full_scale_scenario",
    "scaled_scenario",
    "MITIGATIONS",
    "MemorySystem",
    "SystemReport",
]
