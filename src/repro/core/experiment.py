"""Compatibility shim — the experiment registry moved.

The monolithic ``repro.core.experiment`` module was split into the
declarative :mod:`repro.experiments` package (registry + parallel
runner + per-section experiment modules).  This shim re-exports every
experiment function so existing imports keep working::

    from repro.core.experiment import fig1_error_rates   # still fine
    from repro.experiments import fig1_error_rates       # preferred

New code should import from :mod:`repro.experiments`, which also
exposes the framework (``ExperimentRunner``, ``ExperimentResult``, the
``@experiment`` decorator, and registry lookups by name or alias).
"""

from repro.experiments import *  # noqa: F401,F403
from repro.experiments import __all__ as _exported

__all__ = list(_exported)
