"""The experiment registry: one function per paper artifact.

Each function regenerates one figure/claim of the paper (see
DESIGN.md's experiment index) and returns plain dictionaries/lists so
benches, examples, and tests can share the logic.  Default parameters
are sized to run in seconds; benches may pass larger settings.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.costmodel import MitigationReport
from repro.analysis.reliability import HARD_DISK_AFR_TYPICAL, compare_to_disk
from repro.attacks.hammer import double_sided_device, single_sided_device
from repro.attacks.invariants import check_read_isolation, check_write_isolation
from repro.attacks.privilege import (
    drammer_success_probability,
    flip_feng_shui_templates,
    javascript_success_probability,
    pte_spray_success_probability,
    scan_templates,
)
from repro.core.scenarios import full_scale_scenario, scaled_scenario
from repro.core.system import MemorySystem
from repro.dram.timing import DDR3_1066
from repro.dram.vintage import profile_for
from repro.ecc.hamming import SECDED_72_64
from repro.ecc.parity import ParityCode
from repro.ecc.symbol import SYMBOL_72_64
from repro.fieldstudy.campaign import run_campaign, whole_module_errors
from repro.fieldstudy.population import build_population, instantiate
from repro.mitigations.cra import CounterBasedMitigation, storage_overhead_table
from repro.mitigations.ecc_eval import (
    evaluate_ladder,
    flip_histogram_from_hammer,
    multi_flip_word_fraction,
)
from repro.mitigations.para import (
    log10_failures_per_year,
    performance_overhead_fraction,
    recommended_p,
)
from repro.mitigations.refresh_scaling import multiplier_to_eliminate, refresh_cost
from repro.retention.params import RetentionParams
from repro.retention.population import CellPopulation
from repro.retention.profiling import field_escapes, profile_population
from repro.retention.raidr import assign_bins, runtime_escape_cells
from repro.retention.avatar import simulate_avatar
from repro.flash.mitigations.fcr import fcr_sweep, lifetime_multiplier
from repro.flash.mitigations.nac import correct_wordline
from repro.flash.mitigations.rfr import read_disturb_recovery, recover_wordline
from repro.flash.block import FlashBlock
from repro.flash.params import MLC_1XNM
from repro.flash.ssd import error_breakdown, program_block_shadow
from repro.flash.twostep import exposure_experiment, lifetime_gain_fraction
from repro.pcm.startgap import lifetime_under_pinned_attack


# ----------------------------------------------------------------------
# F1 / C1: the Figure 1 campaign
# ----------------------------------------------------------------------
def fig1_error_rates(seed: int = 0) -> Dict:
    """Regenerate Figure 1: errors/10^9 cells vs manufacture date."""
    summary = run_campaign(seed=seed)
    return {
        "modules_tested": summary.modules_tested,
        "modules_vulnerable": summary.modules_vulnerable,
        "earliest_vulnerable_date": summary.earliest_vulnerable_date,
        "all_2012_2013_vulnerable": summary.all_vulnerable_between(2012.0, 2014.0),
        "yearly_mean_rate": {m: summary.yearly_mean_rate(m) for m in ("A", "B", "C")},
        "peak_rate": {m: summary.peak_errors_per_billion(m) for m in ("A", "B", "C")},
        "results": summary.results,
    }


# ----------------------------------------------------------------------
# C2: memory-isolation invariant violations
# ----------------------------------------------------------------------
def isolation_violations(seed: int = 0, reads: int = 2_600_000) -> Dict:
    """Show reads and writes both corrupt *other* rows, never their own."""
    scenario = full_scale_scenario("B", 2013.0)
    module_r = scenario.make_module(serial="iso-read", seed=seed)
    module_w = scenario.make_module(serial="iso-write", seed=seed + 1)
    read_report = check_read_isolation(module_r, bank=0, accessed_row=500, read_count=reads)
    write_report = check_write_isolation(module_w, bank=0, accessed_row=500, write_count=reads)
    return {
        "read": read_report,
        "write": write_report,
        "read_violated": read_report.violated,
        "write_violated": write_report.violated,
        "read_self_clean": not read_report.accessed_row_changed,
        "write_self_clean": not write_report.accessed_row_changed,
    }


# ----------------------------------------------------------------------
# C3: refresh-rate scaling
# ----------------------------------------------------------------------
def refresh_multiplier_sweep(
    multipliers: Sequence[float] = (1, 2, 3, 4, 5, 6, 7, 8),
    manufacturer: str = "B",
    date: float = 2013.0,
    seed: int = 0,
) -> Dict:
    """Errors and costs vs refresh multiplier; the 7x elimination claim."""
    timing = DDR3_1066
    profile = profile_for(manufacturer, date)
    spec_module = instantiate(build_population()[0], seed=seed)  # geometry template
    rows = []
    for k in multipliers:
        module = spec_module.__class__(
            geometry=spec_module.geometry,
            timing=timing,
            profile=profile,
            serial=f"sweep-{k}",
            manufacturer=manufacturer,
            manufacture_date=date,
            seed=seed,
        )
        result = whole_module_errors(module, refresh_multiplier=float(k))
        cost = refresh_cost(timing, float(k))
        rows.append(
            {
                "multiplier": float(k),
                "errors": result.errors,
                "errors_per_billion": result.errors_per_billion,
                "budget": cost.budget,
                "bandwidth_overhead": cost.bandwidth_overhead,
                "refresh_energy_factor": cost.refresh_energy_factor,
            }
        )
    k_exact = multiplier_to_eliminate(profile.hc_first_min, timing)
    return {"rows": rows, "exact_elimination_multiplier": k_exact}


# ----------------------------------------------------------------------
# C4: ECC sufficiency
# ----------------------------------------------------------------------
def ecc_study(victims: int = 400, seed: int = 0) -> Dict:
    """Flips-per-word histogram of hammer errors and the ECC ladder."""
    scenario = full_scale_scenario("B", 2013.2)
    module = scenario.make_module(serial="ecc", seed=seed)
    pressure = scenario.attack_budget
    histogram = flip_histogram_from_hammer(module, bank=0, victim_count=victims, pressure=pressure)
    ladder = evaluate_ladder(
        histogram,
        codes=(
            ("parity", ParityCode(64)),
            ("secded(72,64)", SECDED_72_64),
            ("symbol(80,64)", SYMBOL_72_64),
        ),
        seed=seed,
    )
    return {
        "histogram": histogram,
        "multi_flip_fraction": multi_flip_word_fraction(histogram),
        "ladder": ladder,
    }


# ----------------------------------------------------------------------
# C5: PARA
# ----------------------------------------------------------------------
def para_reliability(
    p_values: Sequence[float] = (2e-4, 5e-4, 1e-3, 2e-3),
    n_th: float = 139_000.0,
) -> Dict:
    """Closed-form PARA failure rates vs the hard-disk baseline."""
    rows = []
    for p in p_values:
        log10_fail = log10_failures_per_year(p, n_th)
        comparison = compare_to_disk(log10_fail)
        rows.append(
            {
                "p": p,
                "log10_failures_per_year": log10_fail,
                "log10_margin_vs_disk": comparison.log10_margin_vs_disk,
                "perf_overhead": performance_overhead_fraction(p),
            }
        )
    return {
        "rows": rows,
        "disk_afr": HARD_DISK_AFR_TYPICAL,
        "recommended_p_1e-15": recommended_p(n_th, -15.0),
    }


def para_controller_check(p: float = 0.02, iterations: Optional[int] = None, seed: int = 0) -> Dict:
    """Scaled controller-path check: PARA stops the flips a bare system
    suffers (p is scaled up with the scenario's time scale)."""
    scenario = scaled_scenario(scale=20.0)
    iters = iterations if iterations is not None else scenario.attack_budget // 2
    bare = MemorySystem(scenario.make_module(serial="bare", seed=seed))
    bare_flips = bare.hammer_double_sided(victim=1000, iterations=iters)
    protected = MemorySystem(
        scenario.make_module(serial="para", seed=seed),
        mitigation="para",
        mitigation_kwargs={"p": p, "seed": seed},
    )
    para_flips = protected.hammer_double_sided(victim=1000, iterations=iters)
    return {
        "bare_flips": bare_flips,
        "para_flips": para_flips,
        "para_overhead_time": protected.report().time_ns / max(bare.report().time_ns, 1.0) - 1.0,
        "mitigation_refreshes": protected.report().mitigation_refreshes,
    }


# ----------------------------------------------------------------------
# C6: CRA storage/effectiveness
# ----------------------------------------------------------------------
def cra_tradeoff(seed: int = 0) -> Dict:
    """Counter-based mitigation: protection plus the storage bill."""
    scenario = scaled_scenario(scale=20.0)
    iters = scenario.attack_budget // 2
    threshold = max(64, int(scenario.profile.hc_first_min // 4))
    results = []
    for table in (None, 1024, 64):
        system = MemorySystem(
            scenario.make_module(serial=f"cra-{table}", seed=seed),
            mitigation="cra",
            mitigation_kwargs={"threshold": threshold, "table_entries": table,
                               "window_ns": scenario.timing.tREFW},
        )
        flips = system.hammer_double_sided(victim=1000, iterations=iters)
        mit = system.mitigation
        results.append(
            {
                "table_entries": table,
                "flips": flips,
                "detections": mit.detections,
                "storage_bits": mit.storage_bits(scenario.geometry.rows, scenario.geometry.banks),
            }
        )
    storage_full = storage_overhead_table(
        rows=32768, banks=8, thresholds=(32768,), table_sizes=(None, 4096, 256)
    )
    return {"runs": results, "full_scale_storage": storage_full}


# ----------------------------------------------------------------------
# C7: mitigation comparison
# ----------------------------------------------------------------------
def mitigation_comparison(seed: int = 0) -> List[MitigationReport]:
    """All mitigations against the same double-sided attack (scaled)."""
    scenario = scaled_scenario(scale=20.0)
    iters = scenario.attack_budget // 2
    threshold = max(64, int(scenario.profile.hc_first_min // 4))
    configs = [
        ("none", "none", {}, 1.0),
        ("refresh x8", "none", {}, 8.0),
        ("para p=0.02", "para", {"p": 0.02, "seed": seed}, 1.0),
        ("cra full", "cra", {"threshold": threshold, "window_ns": scenario.timing.tREFW}, 1.0),
        ("anvil", "anvil", {"sample_interval_ns": scenario.timing.tREFW / 16, "rate_threshold": threshold // 2}, 1.0),
        ("trr k=4", "trr", {"tracker_entries": 4, "refresh_period_acts": 512}, 1.0),
    ]
    reports: List[MitigationReport] = []
    baseline_flips = None
    baseline_time = None
    baseline_energy = None
    for label, name, kwargs, multiplier in configs:
        system = MemorySystem(
            scenario.make_module(serial=f"cmp-{label}", seed=seed),
            mitigation=name,
            mitigation_kwargs=kwargs,
            refresh_multiplier=multiplier,
        )
        flips = system.hammer_double_sided(victim=1000, iterations=iters)
        rep = system.report()
        if baseline_flips is None:
            baseline_flips, baseline_time, baseline_energy = flips, rep.time_ns, rep.dynamic_energy_nj
        reports.append(
            MitigationReport(
                name=label,
                residual_flips=flips,
                baseline_flips=baseline_flips,
                perf_overhead=max(0.0, rep.time_ns / baseline_time - 1.0),
                energy_overhead=max(0.0, rep.dynamic_energy_nj / baseline_energy - 1.0),
                storage_bits=_storage_of(system.mitigation, scenario),
            )
        )
    return reports


def _storage_of(mitigation, scenario) -> int:
    if isinstance(mitigation, CounterBasedMitigation):
        return mitigation.storage_bits(scenario.geometry.rows, scenario.geometry.banks)
    return 0


# ----------------------------------------------------------------------
# C8: retention — DPD, VRT, profiling escapes, RAIDR vs AVATAR
# ----------------------------------------------------------------------
def retention_study(
    rows: int = 2048,
    cells_per_row: int = 512,
    params: Optional[RetentionParams] = None,
    seed: int = 0,
) -> Dict:
    """Profiling escapes and the RAIDR -> AVATAR escape-rate recovery.

    The default parameterization is sized so the DPD/VRT escape math
    has expectation well above zero: ~1M cells, a 10^-3 weak tail, a
    4-round profiling campaign whose per-round pattern exercises a DPD
    cell's worst case only 35% of the time.
    """
    if params is None:
        params = RetentionParams(
            tail_fraction=1e-3, vrt_fraction=1e-3, dpd_fraction=0.6, dpd_min_factor=0.2
        )
    population = CellPopulation(rows, cells_per_row, params, seed=seed)
    profiling = profile_population(
        population, test_interval_s=0.512, rounds=4, pattern_coverage=0.35, seed=seed
    )
    escapes = field_escapes(population, profiling, field_refresh_interval_s=0.256, observation_s=6 * 3600.0)
    assignment = assign_bins(population, profiling.observed_retention_s)
    raidr_escapes = runtime_escape_cells(population, assignment, observation_s=6 * 3600.0)
    avatar = simulate_avatar(population, assignment, days=5, seed=seed)
    return {
        "discovered": len(profiling.discovered),
        "profiling_escapes": len(escapes),
        "raidr_savings_fraction": assignment.savings_fraction(),
        "raidr_bin_counts": assignment.bin_counts(),
        "raidr_escape_cells": len(raidr_escapes),
        "avatar_daily_escapes": avatar.daily_escapes,
        "avatar_total_escapes": avatar.total_escapes,
        "avatar_final_refresh_rate": avatar.refreshes_per_second_final,
        "raidr_refresh_rate": assignment.refreshes_per_second(),
        "baseline_refresh_rate": assignment.baseline_refreshes_per_second(),
    }


# ----------------------------------------------------------------------
# C9: flash error breakdown + FCR
# ----------------------------------------------------------------------
def flash_error_sweep(
    pe_grid: Sequence[int] = (0, 3000, 8000, 15000, 25000),
    retention_days: float = 365.0,
    reads: int = 20_000,
    seed: int = 0,
) -> List[Dict]:
    """Error mix vs wear: retention comes to dominate."""
    rows = []
    for pe in pe_grid:
        breakdown = error_breakdown(pe, retention_days, reads, wordlines=8, cells=2048, seed=seed)
        rows.append(
            {
                "pe_cycles": pe,
                "wear_and_interference": breakdown.wear_and_interference,
                "retention": breakdown.retention,
                "read_disturb": breakdown.read_disturb,
                "dominant": breakdown.dominant(),
            }
        )
    return rows


def fcr_study(seed: int = 0) -> Dict:
    """FCR lifetime sweep and its headline multiplier."""
    points = fcr_sweep(seed=seed, wordlines=4, cells=2048)
    return {
        "points": points,
        "lifetime_multiplier": lifetime_multiplier(points),
    }


def vref_tuning_study(
    pe_cycles: int = 15_000,
    retention_days: float = 365.0,
    seed: int = 0,
) -> Dict:
    """Read-reference tuning: the SSD controller's first-line fix.

    §II-D's "intelligent controller" point in its most deployed form:
    after retention shifts the Vth distributions, re-centering the read
    references in the (moved) valleys removes most retention errors
    without any stronger ECC.  Real controllers do this via read-retry.
    """
    from repro.flash.block import FlashBlock
    from repro.flash.ssd import program_block_shadow
    from repro.flash.vth import optimal_read_refs, state_from_bits

    block = FlashBlock(wordlines=8, cells=2048, seed=seed)
    block.set_pe_cycles(pe_cycles)
    program_block_shadow(block, seed=seed)
    block.age_retention(retention_days)
    factory_errors = sum(
        block.page_errors(wl, which)
        for wl in block.programmed_wordlines()
        for which in ("lsb", "msb")
    )
    # Tune on one wordline's known data (a controller uses a pilot page),
    # then apply the tuned references everywhere.
    pilot = 3
    states = state_from_bits(block.wl_state[pilot].true_lsb, block.wl_state[pilot].true_msb)
    tuned = optimal_read_refs(block.vth[pilot], states, block.params)
    tuned_errors = sum(
        block.page_errors(wl, which, read_refs=tuned)
        for wl in block.programmed_wordlines()
        for which in ("lsb", "msb")
    )
    return {
        "factory_errors": factory_errors,
        "tuned_errors": tuned_errors,
        "factory_refs": tuple(block.params.read_refs),
        "tuned_refs": tuned,
        "reduction_fraction": 1.0 - tuned_errors / max(factory_errors, 1),
    }


# ----------------------------------------------------------------------
# C10/C11: RFR, read-disturb recovery, NAC
# ----------------------------------------------------------------------
def recovery_study(seed: int = 0) -> Dict:
    """Offline recovery mechanisms: RFR, read-disturb recovery, NAC."""
    block = FlashBlock(wordlines=8, cells=2048, seed=seed)
    block.set_pe_cycles(12_000)
    program_block_shadow(block, seed=seed)
    block.age_retention(365.0)
    rfr = recover_wordline(block, 3, seed=seed)

    block_rd = FlashBlock(wordlines=8, cells=2048, seed=seed + 1)
    block_rd.set_pe_cycles(8_000)
    program_block_shadow(block_rd, seed=seed + 1)
    block_rd.apply_read_disturb(150_000)
    rdr = read_disturb_recovery(block_rd, 3, seed=seed + 1)

    block_nac = FlashBlock(wordlines=8, cells=4096, params=MLC_1XNM, seed=seed + 2)
    block_nac.set_pe_cycles(15_000)
    program_block_shadow(block_nac, seed=seed + 2)
    nac = correct_wordline(block_nac, 3, seed=seed + 2)
    return {"rfr": rfr, "read_disturb_recovery": rdr, "nac": nac}


# ----------------------------------------------------------------------
# C12: two-step programming
# ----------------------------------------------------------------------
def twostep_study(pe_cycles: int = 8000, seed: int = 0) -> Dict:
    """Exposure-window corruption and the buffering mitigation."""
    result = exposure_experiment(pe_cycles=pe_cycles, seed=seed)
    return {
        "exposed_errors": result.exposed_errors,
        "mitigated_errors": result.mitigated_errors,
        "control_errors": result.control_errors,
    }


def twostep_lifetime_study(seed: int = 0, error_budget: int = 160) -> Dict:
    """Lifetime gain from hardening two-step programming (paper: ~16%)."""
    gain = lifetime_gain_fraction(error_budget=error_budget, seed=seed)
    return {"lifetime_gain_fraction": gain}


# ----------------------------------------------------------------------
# C13: PCM wear attack
# ----------------------------------------------------------------------
def pcm_study(seed: int = 0) -> Dict:
    """Pinned-write attack lifetime without/with Start-Gap leveling."""
    bare = lifetime_under_pinned_attack(leveling=None, seed=seed)
    leveled = lifetime_under_pinned_attack(leveling="startgap", seed=seed)
    randomized = lifetime_under_pinned_attack(leveling="startgap-rand", seed=seed)
    return {
        "bare_lifetime_writes": bare,
        "startgap_lifetime_writes": leveled,
        "startgap_rand_lifetime_writes": randomized,
        "improvement_factor": leveled / bare,
    }


# ----------------------------------------------------------------------
# C14: the attack gallery
# ----------------------------------------------------------------------
def attack_gallery(
    dates: Sequence[float] = (2011.0, 2012.5, 2013.2),
    rows_scanned: int = 3000,
    seed: int = 0,
) -> List[Dict]:
    """Success probability of each §II-B attack vs module vintage."""
    out = []
    for date in dates:
        scenario = full_scale_scenario("B", date)
        module = scenario.make_module(serial=f"gallery-{date}", seed=seed)
        pressure = scenario.attack_budget
        templates = scan_templates(module, 0, range(64, 64 + rows_scanned), pressure)
        out.append(
            {
                "date": date,
                "templates": len(templates),
                "pte_spray": pte_spray_success_probability(templates, spray_fraction=0.35, seed=seed),
                "flip_feng_shui": len(flip_feng_shui_templates(templates)) > 0,
                "ffs_usable_templates": len(flip_feng_shui_templates(templates)),
                # The scanned region stands in for the attacker-reachable
                # memory (scanning the full module is possible but slow).
                "drammer": drammer_success_probability(
                    templates, total_rows=rows_scanned, chunk_rows=256, seed=seed
                ),
                "javascript": javascript_success_probability(
                    templates, total_rows=rows_scanned, aggressor_attempts=200, seed=seed
                ),
            }
        )
    return out


# ----------------------------------------------------------------------
# Extension: fleet-scale exposure (§III field-study context)
# ----------------------------------------------------------------------
def fleet_study(seed: int = 0, servers: int = 1500) -> Dict:
    """Data-center exposure from the vintage mix, and the patch payoff."""
    from repro.fieldstudy.fleet import fleet_exposure, patch_rollout_study

    exposure = fleet_exposure(servers=servers, seed=seed)
    rollout = patch_rollout_study(servers=servers, seed=seed)
    return {
        "vulnerable_fraction": exposure.vulnerable_fraction,
        "compromised_servers": exposure.compromised_servers,
        "by_year": exposure.by_year,
        "patch_rollout": rollout,
    }


# ----------------------------------------------------------------------
# Extension: multi-bank attack scaling under tRRD/tFAW
# ----------------------------------------------------------------------
def multibank_study(seed: int = 0, bank_counts: Sequence[int] = (1, 2, 4, 6, 8)) -> List[Dict]:
    """Attack throughput vs simultaneously hammered banks.

    A single-bank hammer is tRC-bound; parallel banks multiply total
    victim flips until the rank's tFAW activation-rate limit saturates
    and per-bank pressure starts falling.
    """
    from repro.attacks.hammer import multibank_attack_scaling

    scenario = full_scale_scenario("B", 2013.0)
    return multibank_attack_scaling(
        lambda: scenario.make_module(serial="multibank", seed=seed),
        bank_counts=bank_counts,
    )


# ----------------------------------------------------------------------
# Extension: data-pattern dependence of disturbance errors (ISCA'14)
# ----------------------------------------------------------------------
def pattern_dependence_study(
    victims: int = 200,
    seed: int = 0,
    patterns: Sequence[str] = ("rowstripe", "checkered", "random", "solid1", "colstripe"),
) -> List[Dict]:
    """Flips per data pattern — the original study's DPD observation.

    Stripe-family fills (aggressor opposing the victim) maximize
    coupling; solid fills relieve aggressor-sensitive cells; random
    data sits in between.  Same module, same pressure, only the fill
    changes.
    """
    scenario = full_scale_scenario("B", 2013.0)
    pressure = scenario.attack_budget // 2
    out = []
    for pattern in patterns:
        module = scenario.make_module(serial="dpd", seed=seed, default_pattern=pattern)
        flips = 0
        bank = module.bank(0)
        for i in range(victims):
            victim = 64 + 3 * i
            bank.bulk_activate(victim - 1, pressure)
            bank.bulk_activate(victim + 1, pressure)
        bank.settle()
        flips = bank.stats.flips_materialized
        out.append({"pattern": pattern, "flips": flips})
    return out


# ----------------------------------------------------------------------
# Extension: emerging memories (§III) — STT-MRAM and RRAM crossbars
# ----------------------------------------------------------------------
def emerging_memory_study(seed: int = 0) -> Dict:
    """§III's forward-looking claim, quantified for two technologies.

    STT-MRAM: read-disturb and retention error rates rise together as
    the thermal stability factor shrinks with density.  RRAM: a
    crossbar's half-select stress is a literal RowHammer analogue —
    hammering one address flips cells on the shared row/column lines.
    """
    from repro.emerging import crossbar_hammer_study, scaling_study

    stt = scaling_study(deltas=(70.0, 60.0, 50.0, 40.0), cells=1 << 18, seed=seed)
    rram = crossbar_hammer_study(accesses=(1e5, 1e6, 1e7), rows=128, cols=128, seed=seed)
    return {"stt_scaling": stt, "rram_hammer": rram}


# ----------------------------------------------------------------------
# Extension: intelligent-controller co-design wins (§II-C / §IV)
# ----------------------------------------------------------------------
def codesign_study(seed: int = 0) -> Dict:
    """The system-memory co-design argument, quantified twice over.

    1. **AL-DRAM**: per-module latency profiling recovers double-digit
       access-latency headroom the one-size-fits-all spec wastes.
    2. **Online (content-aware) retention profiling**: testing rows
       against their *resident* data catches DPD failures that a
       bounded static campaign misses — with zero escapes, because the
       test runs before a full retention interval elapses under the
       hazardous content.
    """
    from repro.dram.latency import aldram_study
    from repro.retention.online_profiling import simulate_online_profiling
    from repro.retention.params import RetentionParams
    from repro.retention.population import CellPopulation

    latency_rows = aldram_study(n_modules=12, seed=seed)
    mean_speedup = sum(r["speedup_fraction"] for r in latency_rows) / len(latency_rows)

    params = RetentionParams(
        tail_fraction=3e-3, vrt_fraction=0.0, dpd_fraction=0.7, dpd_min_factor=0.2
    )
    population = CellPopulation(512, 256, params, seed=seed)
    profiling = simulate_online_profiling(population, generations=12, seed=seed)
    return {
        "aldram_rows": latency_rows,
        "aldram_mean_speedup": mean_speedup,
        "online_discovered": len(set(profiling.discovered_online)),
        "static_discovered": len(profiling.discovered_static),
        "static_escapes": profiling.escapes_static,
        "online_escapes": profiling.escapes_online,
    }


# ----------------------------------------------------------------------
# Extension: multi-rate refresh opens RowHammer headroom (§III-A1 risk)
# ----------------------------------------------------------------------
def raidr_rowhammer_interaction(seed: int = 0, slow_bin: int = 2) -> Dict:
    """RAIDR-binned rows gain a multiplied RowHammer budget.

    §III-A1 closes with: "it is important for such investigations to
    ensure no new vulnerabilities ... open up due to the solutions
    developed."  Here is one: a module whose weakest cell sits safely
    above the 64 ms activation budget is *invulnerable* under uniform
    refresh — but a row parked in a 256 ms RAIDR bin accumulates four
    windows of hammering before its next refresh, and flips.
    """
    from dataclasses import replace

    base = scaled_scenario(scale=20.0)
    budget = base.attack_budget
    # Thresholds 1.5x above the single-window budget: safe at bin 0.
    profile = replace(
        base.profile,
        hc_first_min=budget * 1.5,
        hc_first_median=budget * 2.5,
    )
    scenario = replace(base, profile=profile)
    periods = 1 << slow_bin
    iterations = (periods * budget) // 2  # hammer across `periods` windows
    results = {}
    for label, binned in (("uniform-64ms", False), (f"raidr-bin{slow_bin}", True)):
        module = scenario.make_module(serial=f"raidr-{label}", seed=seed)
        bins = np.zeros(scenario.geometry.rows, dtype=np.int64)
        if binned:
            bins[995:1006] = slow_bin  # the victim neighborhood profiled "strong"
        from repro.controller.controller import MemoryController

        controller = MemoryController(module, refresh_row_bins=bins)
        controller.run_activation_pattern(0, [999, 1001], iterations)
        controller.finish()
        results[label] = module.total_flips()
    return {
        "flips": results,
        "budget_per_window": budget,
        "threshold_floor": profile.hc_first_min,
        "slow_bin_window_multiplier": periods,
    }


# ----------------------------------------------------------------------
# Extension: user-level attack strategies through a real cache
# ----------------------------------------------------------------------
def userlevel_attack_study(seed: int = 0) -> Dict:
    """§II-A end to end: plain loads vs CLFLUSH vs eviction sets.

    Each strategy gets exactly one refresh window of wall-clock time on
    the same module behind a set-associative cache.  A second, weaker
    module shows the eviction strategy flipping once thresholds drop
    (the JavaScript attack's dependence on more vulnerable parts).
    """
    from dataclasses import replace

    from repro.cpu import CpuMemorySystem, SetAssociativeCache

    scenario = scaled_scenario(scale=20.0)
    window = scenario.timing.tREFW

    def run(strategy: str, profile_scale: float = 1.0) -> Dict:
        profile = scenario.profile
        if profile_scale != 1.0:
            profile = replace(
                profile,
                hc_first_min=profile.hc_first_min / profile_scale,
                hc_first_median=profile.hc_first_median / profile_scale,
            )
        module = replace(scenario, profile=profile).make_module(
            serial=f"cpu-{strategy}-{profile_scale}", seed=seed
        )
        system = CpuMemorySystem(module, cache=SetAssociativeCache(size_bytes=1 << 20, ways=8))
        stats = getattr(system, f"{strategy}_hammer")(
            0, [999, 1001], 10**9, time_budget_ns=window
        )
        return {
            "strategy": strategy,
            "loads": stats.loads,
            "target_activations": stats.target_activations,
            "flips": stats.flips,
            "efficiency": stats.activation_efficiency,
            "acts_per_window": stats.activations_per_window(window),
        }

    rows = [run(s) for s in ("naive", "flush", "eviction")]
    eviction_on_weak_module = run("eviction", profile_scale=4.0)
    return {"rows": rows, "eviction_on_weak_module": eviction_on_weak_module}


# ----------------------------------------------------------------------
# Extension: many-sided hammering vs the TRR sampler (TRRespass-style)
# ----------------------------------------------------------------------
def trr_bypass_study(
    n_pairs_list: Sequence[int] = (1, 2, 4, 8),
    tracker_entries: int = 2,
    seed: int = 0,
) -> List[Dict]:
    """Bounded in-DRAM samplers fail against many simultaneous aggressors.

    §II-B notes that "even state-of-the-art DDR4 DRAM chips are
    vulnerable" — the later TRRespass work showed why: TRR-class
    mitigations track only a few aggressors.  We model a future scaled
    node (very low thresholds, so diluted per-pair pressure still
    flips cells) and sweep the number of simultaneous aggressor pairs
    against a small-sampler TRR.
    """
    from dataclasses import replace

    from repro.mitigations.trr import TrrMitigation

    base = scaled_scenario(scale=20.0)
    # Future node: thresholds ~5x lower still, denser weak cells.
    profile = replace(
        base.profile,
        hc_first_min=base.profile.hc_first_min / 5.0,
        hc_first_median=base.profile.hc_first_median / 5.0,
        weak_cell_density=min(1.0, base.profile.weak_cell_density * 2),
    )
    scenario = replace(base, profile=profile)
    window_acts = scenario.attack_budget
    out = []
    for n_pairs in n_pairs_list:
        module = scenario.make_module(serial=f"trrespass-{n_pairs}", seed=seed)
        system = MemorySystem(
            module,
            mitigation="trr",
            mitigation_kwargs={"tracker_entries": tracker_entries, "refresh_period_acts": 512},
        )
        # n_pairs double-sided pairs, victims spaced well apart; total
        # activations fixed at one window, split evenly.
        aggressors = []
        for i in range(n_pairs):
            victim = 500 + 40 * i
            aggressors.extend([victim - 1, victim + 1])
        iterations = max(1, window_acts // len(aggressors))
        before = module.total_flips()
        system.controller.run_activation_pattern(0, aggressors, iterations)
        system.controller.finish()
        out.append(
            {
                "n_pairs": n_pairs,
                "flips": module.total_flips() - before,
                "targeted_refreshes": system.mitigation.targeted_refreshes,
                "per_victim_pressure": 2 * iterations,
            }
        )
    return out


# ----------------------------------------------------------------------
# Extension: single- vs double-sided ablation
# ----------------------------------------------------------------------
def sidedness_ablation(seed: int = 0) -> Dict:
    """Double-sided hammering beats single-sided at equal activation rate.

    Both attackers issue ``budget`` activations within the window.  The
    single-sided attacker must alternate its aggressor with a *dummy*
    far row (to defeat the row buffer), so its victim accumulates only
    half the pressure; the double-sided attacker spends everything on
    the shared victim's two neighbors.
    """
    scenario = full_scale_scenario("B", 2013.0)
    budget = scenario.attack_budget
    module_s = scenario.make_module(serial="single", seed=seed)
    # Aggressor gets budget/2 activations; the other half goes to a dummy
    # row far away (its disturbance is accounted too, but irrelevant here).
    single = single_sided_device(module_s, 0, aggressor=1000, count=budget // 2)
    single_sided_device(module_s, 0, aggressor=8000, count=budget // 2)
    module_d = scenario.make_module(serial="double", seed=seed)
    double = double_sided_device(module_d, 0, victim=1000, count=budget // 2)
    # Per-victim comparison: the single-sided attacker's best neighbor
    # vs the double-sided attacker's bracketed victim.
    single_victim_flips = max(
        sum(1 for row, _ in single.flips if row == 999),
        sum(1 for row, _ in single.flips if row == 1001),
    )
    double_victim_flips = sum(1 for row, _ in double.flips if row == 1000)
    return {
        "single_flips": single_victim_flips,
        "double_flips": double_victim_flips,
        "total_activations_each": budget,
    }
