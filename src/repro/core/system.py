"""The `MemorySystem` facade: module + controller + mitigation in one handle.

This is the library's main entry point for DRAM experiments::

    from repro import MemorySystem

    system = MemorySystem.build(manufacturer="B", date=2013.0,
                                mitigation="para", mitigation_kwargs={"p": 0.001})
    flips = system.hammer_double_sided(victim=1200, iterations=60_000)
    print(system.report())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.controller.controller import MemoryController
from repro.controller.hooks import NullMitigation
from repro.core.scenarios import Scenario, full_scale_scenario, scaled_scenario
from repro.dram.module import DramModule
from repro.mitigations.anvil import AnvilMitigation
from repro.mitigations.cra import CounterBasedMitigation
from repro.mitigations.para import Para
from repro.mitigations.trr import TrrMitigation

#: mitigation factory registry (name -> constructor).
MITIGATIONS = {
    "none": NullMitigation,
    "para": Para,
    "cra": CounterBasedMitigation,
    "anvil": AnvilMitigation,
    "trr": TrrMitigation,
}


@dataclass(frozen=True)
class SystemReport:
    """End-of-run summary of a :class:`MemorySystem`.

    Attributes:
        flips: disturbance errors that materialized.
        activations: row activations issued.
        mitigation_refreshes: victim refreshes the mitigation injected.
        time_ns: simulated time elapsed.
        dynamic_energy_nj: dynamic DRAM energy spent.
        refresh_energy_share: fraction of dynamic energy spent refreshing.
    """

    flips: int
    activations: int
    mitigation_refreshes: int
    time_ns: float
    dynamic_energy_nj: float
    refresh_energy_share: float


class MemorySystem:
    """A module driven by a mitigation-aware controller."""

    def __init__(
        self,
        module: DramModule,
        mitigation: str = "none",
        mitigation_kwargs: Optional[Dict] = None,
        refresh_multiplier: float = 1.0,
        spd_adjacency: bool = True,
    ) -> None:
        if mitigation not in MITIGATIONS:
            raise KeyError(f"unknown mitigation {mitigation!r}; options: {sorted(MITIGATIONS)}")
        self.module = module
        self.mitigation = MITIGATIONS[mitigation](**(mitigation_kwargs or {}))
        self.controller = MemoryController(
            module,
            mitigation=self.mitigation,
            refresh_multiplier=refresh_multiplier,
            spd_adjacency=spd_adjacency,
        )

    @classmethod
    def build(
        cls,
        manufacturer: str = "B",
        date: float = 2013.0,
        scenario: Optional[Scenario] = None,
        scaled: bool = False,
        scale: float = 20.0,
        seed: int = 0,
        **kwargs,
    ) -> "MemorySystem":
        """Build a system from a vintage (optionally time-scaled) scenario."""
        if scenario is None:
            scenario = (
                scaled_scenario(scale=scale, manufacturer=manufacturer, date=date)
                if scaled
                else full_scale_scenario(manufacturer, date)
            )
        return cls(scenario.make_module(seed=seed), **kwargs)

    # ------------------------------------------------------------------
    # Attack drivers
    # ------------------------------------------------------------------
    def hammer_double_sided(self, victim: int, iterations: int, bank: int = 0) -> int:
        """Hammer both neighbors of ``victim`` through the full command
        pipeline; return the flips produced."""
        before = self.module.total_flips()
        aggressors = [victim - 1, victim + 1]
        self.controller.run_activation_pattern(bank, aggressors, iterations)
        self.controller.finish()
        return self.module.total_flips() - before

    def hammer_single_sided(self, aggressor: int, iterations: int, bank: int = 0) -> int:
        """Hammer one row through the full command pipeline."""
        before = self.module.total_flips()
        self.controller.run_activation_pattern(bank, [aggressor], iterations)
        self.controller.finish()
        return self.module.total_flips() - before

    def run_trace(self, trace) -> None:
        """Replay a (bank, row, is_write) trace through the controller."""
        self.controller.run_trace(trace)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> SystemReport:
        """Summarize the run so far."""
        ctrl = self.controller
        return SystemReport(
            flips=self.module.total_flips(),
            activations=ctrl.stats.activations,
            mitigation_refreshes=ctrl.stats.mitigation_refreshes,
            time_ns=ctrl.time_ns,
            dynamic_energy_nj=ctrl.energy.dynamic_nj,
            refresh_energy_share=ctrl.energy.refresh_share(),
        )
