"""Serializable experiment configuration.

A :class:`SystemConfig` captures everything needed to rebuild a
:class:`~repro.core.system.MemorySystem` — vintage, scaling, mitigation
and its parameters, refresh rate, adjacency knowledge, seed — and
round-trips through JSON so experiment setups can be stored alongside
their results (the reproducibility discipline §IV advocates for
failure-modeling studies).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict

from repro.core.system import MITIGATIONS, MemorySystem
from repro.dram.vintage import MANUFACTURERS


@dataclass(frozen=True)
class SystemConfig:
    """A complete, serializable MemorySystem recipe.

    Attributes:
        manufacturer: vintage vendor ("A"/"B"/"C").
        date: manufacture date (fractional year).
        scaled: use the time-scaled controller scenario.
        scale: time-scaling factor when ``scaled``.
        mitigation: mitigation registry name.
        mitigation_kwargs: constructor arguments for the mitigation.
        refresh_multiplier: auto-refresh rate multiplier.
        spd_adjacency: whether the controller knows true adjacency.
        seed: experiment seed.
    """

    manufacturer: str = "B"
    date: float = 2013.0
    scaled: bool = True
    scale: float = 20.0
    mitigation: str = "none"
    mitigation_kwargs: Dict[str, Any] = field(default_factory=dict)
    refresh_multiplier: float = 1.0
    spd_adjacency: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.manufacturer not in MANUFACTURERS:
            raise ValueError(f"manufacturer must be one of {MANUFACTURERS}")
        if self.mitigation not in MITIGATIONS:
            raise ValueError(f"mitigation must be one of {sorted(MITIGATIONS)}")
        if self.scale <= 0 or self.refresh_multiplier <= 0:
            raise ValueError("scale and refresh_multiplier must be positive")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-compatible)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SystemConfig":
        """Rebuild from :meth:`to_dict` output; unknown keys rejected."""
        allowed = set(cls.__dataclass_fields__)
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> str:
        """JSON form."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "SystemConfig":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(payload))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self) -> MemorySystem:
        """Instantiate the configured system."""
        return MemorySystem.build(
            manufacturer=self.manufacturer,
            date=self.date,
            scaled=self.scaled,
            scale=self.scale,
            seed=self.seed,
            mitigation=self.mitigation,
            mitigation_kwargs=dict(self.mitigation_kwargs),
            refresh_multiplier=self.refresh_multiplier,
            spd_adjacency=self.spd_adjacency,
        )
