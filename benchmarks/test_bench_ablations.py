"""Ablations of the design choices DESIGN.md calls out.

* single- vs double-sided hammering effectiveness;
* PARA probability sweep (protection vs overhead);
* SPD adjacency vs naive +/-1 guessing under internal remapping.
"""

from conftest import run_once

from repro.experiments import para_reliability, sidedness_ablation
from repro.core.scenarios import scaled_scenario
from repro.core.system import MemorySystem


def test_bench_ablation_sidedness(benchmark, table):
    result = run_once(benchmark, sidedness_ablation, seed=0)
    print()
    print(table(
        ["pattern", "flips on targeted victim"],
        [
            ["single-sided (aggressor + dummy)", result["single_flips"]],
            ["double-sided", result["double_flips"]],
        ],
        title="Ablation — sidedness at equal activation rate",
    ))
    assert result["double_flips"] > result["single_flips"]


def test_bench_ablation_para_sweep(benchmark, table):
    result = run_once(benchmark, para_reliability, p_values=(1e-4, 5e-4, 1e-3, 5e-3, 2e-2))
    rows = result["rows"]
    print()
    print(table(
        ["p", "log10 failures/yr", "perf overhead"],
        [[f"{r['p']:g}", f"{r['log10_failures_per_year']:.1f}", f"{100 * r['perf_overhead']:.2f}%"]
         for r in rows],
        title="Ablation — PARA p: protection vs overhead",
    ))
    rates = [r["log10_failures_per_year"] for r in rows]
    overheads = [r["perf_overhead"] for r in rows]
    assert rates == sorted(rates, reverse=True)
    assert overheads == sorted(overheads)


def test_bench_ablation_multibank(benchmark, table):
    from repro.experiments import multibank_study

    rows = run_once(benchmark, multibank_study, seed=0)
    print()
    print(table(
        ["parallel banks", "per-bank budget", "total victim flips"],
        [[r["banks"], r["per_bank_budget"], r["victim_flips_total"]] for r in rows],
        title="Ablation — multi-bank hammering under tRRD/tFAW",
    ))
    totals = [r["victim_flips_total"] for r in rows]
    assert totals == sorted(totals)                       # more banks, more damage
    budgets = [r["per_bank_budget"] for r in rows]
    assert budgets[-1] < budgets[0]                        # tFAW bites eventually


def spd_ablation(seed=0):
    """PARA with true adjacency vs naive guessing on a remapped module."""
    scenario = scaled_scenario(scale=20.0)
    iters = scenario.attack_budget // 2
    out = {}
    for label, spd in (("spd", True), ("naive", False)):
        module = scenario.make_module(serial=f"spd-{label}", seed=seed, remap_scheme="block-swap")
        system = MemorySystem(
            module, mitigation="para", mitigation_kwargs={"p": 0.05, "seed": seed},
            spd_adjacency=spd,
        )
        # Victim at a block boundary, where block-swap breaks +/-1 guessing.
        out[label] = system.hammer_double_sided(victim=1004, iterations=iters)
    return out


def test_bench_ablation_spd_adjacency(benchmark, table):
    result = run_once(benchmark, spd_ablation, seed=0)
    print()
    print(table(
        ["adjacency source", "residual flips"],
        [["SPD-published (paper's proposal)", result["spd"]],
         ["naive logical +/-1", result["naive"]]],
        title="Ablation — PARA needs true adjacency under internal remapping",
    ))
    assert result["spd"] <= result["naive"]
