"""Simulator micro-benchmarks (multi-round timing of the hot paths).

Unlike the experiment benches (one-shot regenerations), these measure
the library's own primitives so performance regressions are visible:
per-command controller throughput, the device bulk path, the
vectorized campaign scan, and ECC decode.
"""

import numpy as np

from repro.controller import MemoryController
from repro.core.scenarios import scaled_scenario
from repro.dram import DisturbanceModel, DramBank, DramGeometry, VulnerabilityProfile
from repro.ecc import SECDED_72_64
from repro.fieldstudy import build_population, instantiate, whole_module_errors

GEO = DramGeometry(banks=2, rows=1024, row_bytes=1024)
PROFILE = VulnerabilityProfile(weak_cell_density=1e-4, hc_first_median=700_000, hc_first_min=139_000)


def test_perf_bank_bulk_activate(benchmark):
    """Device fast path: one bulk hammer + settle."""
    def run():
        bank = DramBank(GEO, DisturbanceModel(GEO, PROFILE, 1), 0)
        bank.bulk_activate(500, 1_000_000)
        bank.settle()
        return bank.stats.activations

    result = benchmark(run)
    assert result == 1_000_000


def test_perf_controller_command_path(benchmark):
    """Per-command pipeline: 2000 activations through timing/refresh/hooks."""
    scenario = scaled_scenario(scale=20.0)

    def run():
        ctrl = MemoryController(scenario.make_module(serial="perf", seed=2))
        ctrl.run_activation_pattern(0, [99, 101], 1_000)
        return ctrl.stats.activations

    result = benchmark(run)
    assert result == 2_000


def test_perf_whole_module_scan(benchmark):
    """Vectorized campaign scan of one 2 GiB-class module."""
    spec = next(s for s in build_population() if s.manufacturer == "B" and s.date >= 2013.0)

    def run():
        module = instantiate(spec, seed=3)
        return whole_module_errors(module).errors

    errors = benchmark(run)
    assert errors > 0


def test_perf_secded_decode(benchmark):
    """SECDED decode of 200 single-error words."""
    rng = np.random.default_rng(0)
    words = [rng.integers(0, 2, size=64).astype(np.uint8) for _ in range(200)]
    codewords = []
    for w in words:
        cw = SECDED_72_64.encode(w)
        cw[int(rng.integers(0, 72))] ^= 1
        codewords.append(cw)

    def run():
        return sum(len(SECDED_72_64.decode(cw).corrected_positions) for cw in codewords)

    corrected = benchmark(run)
    assert corrected == 200
