"""Shared benchmark helpers.

Every bench regenerates one artifact of the paper (DESIGN.md's
experiment index), prints the rows/series the paper reports, and
asserts the *shape* claims.  ``pytest benchmarks/ --benchmark-only``
runs the full harness.
"""

import pytest


@pytest.fixture(autouse=True)
def _ledger_off(monkeypatch):
    """Benchmarks must never write the user's real run ledger."""
    monkeypatch.setenv("REPRO_LEDGER", "off")
    monkeypatch.delenv("REPRO_LEDGER_PATH", raising=False)


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment with a single timed execution.

    The experiments are deterministic simulations (seconds each), so
    one round gives a meaningful wall-clock figure without repeating
    multi-second campaigns dozens of times.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def table():
    from repro.analysis import format_table

    return format_table
