"""Sanitizer overhead benches.

The sanitizer borrows telemetry's contract: instrument sites behind
module-global guards must be near-free when the sanitizer is ``off``
(≤5% on a representative hot loop), and an enabled ``full`` run over a
real experiment must still finish — with its invariants intact — in
simulator-scale time.
"""

import time

import numpy as np

from conftest import run_once
from repro.experiments import execute_job
from repro.sanitizer import runtime as sanit

#: One sensed row's worth of work per iteration, matching the telemetry
#: bench so the two guard contracts are measured on the same loop.
_ROW = np.arange(8192, dtype=np.uint8)

#: A registered subsystem whose cheap check is O(1); never reached when
#: the sanitizer is off.
_BANK_STUB = type("BankStub", (), {
    "geometry": type("Geo", (), {"rows": 128})(),
    "open_row": None,
    "_pressure": {},
    "_peak": {},
    "_data": {},
})()


def _hot_loop(iters: int, guarded: bool) -> int:
    """A bank-shaped hot loop with the exact instrument-site idiom:
    one module-attribute read and a falsy branch per iteration."""
    total = 0
    for _ in range(iters):
        total += int(_ROW.sum())
        if guarded:
            if sanit.sanitize_on:
                sanit.check("dram.bank", _BANK_STUB)
    return total


def _best_interleaved(iters: int, repeats: int = 15):
    """Min-of-repeats for both variants, measured back-to-back each
    round so clock-frequency drift hits them equally."""
    bare = guarded = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _hot_loop(iters, False)
        t1 = time.perf_counter()
        _hot_loop(iters, True)
        t2 = time.perf_counter()
        bare = min(bare, t1 - t0)
        guarded = min(guarded, t2 - t1)
    return bare, guarded


def test_perf_disabled_guard_overhead_under_5pct():
    """``--sanitize off`` (the default) must be free: the instrumented
    loop runs within 5% of the identical bare loop."""
    prev = sanit.set_level("off")
    try:
        _hot_loop(1_000, True), _hot_loop(1_000, False)  # warm up
        bare, guarded = _best_interleaved(10_000)
    finally:
        sanit.set_level(prev)
    overhead = guarded / bare - 1.0
    print(f"\ndisabled-sanitizer overhead: {overhead:+.2%} "
          f"(bare {bare*1e3:.1f} ms, guarded {guarded*1e3:.1f} ms)")
    assert overhead <= 0.05


def test_perf_rowhammer_basic_under_full_sanitize(benchmark):
    """End-to-end: a representative experiment completes under
    ``REPRO_SANITIZE=full`` with every invariant holding."""
    prev = sanit.set_level("full")
    try:
        result = run_once(benchmark, execute_job, "rowhammer_basic",
                          params={"victims": 16}, seed=0)
    finally:
        sanit.set_level(prev)
    assert result.error is None
    assert result.payload["activations"] > 0
