"""C10 — §III-A2: Retention Failure Recovery.

"by identifying which cells are fast-leaking and which cells are
slow-leaking, one can probabilistically estimate the original values"
— and the flip side: the same procedure is a privacy risk on discarded
devices.
"""

from conftest import run_once

from repro.flash import FlashBlock, program_block_shadow
from repro.flash.mitigations import recover_wordline


def rfr_experiment(seed=0, pe=12_000, age_days=365.0, wordlines=8):
    block = FlashBlock(wordlines=wordlines, cells=2048, seed=seed)
    block.set_pe_cycles(pe)
    program_block_shadow(block, seed=seed)
    block.age_retention(age_days)
    return [recover_wordline(block, wl, seed=seed) for wl in range(1, wordlines - 1)]


def test_bench_c10_rfr(benchmark, table):
    outcomes = run_once(benchmark, rfr_experiment)
    rows = [
        [i + 1, o.errors_before, o.errors_after, f"{100 * o.reduction_fraction:.1f}%"]
        for i, o in enumerate(outcomes)
    ]
    total_before = sum(o.errors_before for o in outcomes)
    total_after = sum(o.errors_after for o in outcomes)
    print()
    print(table(
        ["wordline", "errors before", "errors after RFR", "reduction"],
        rows,
        title="C10 — Retention Failure Recovery on a 1-year-aged, 12K-cycle block",
    ))
    print(f"total: {total_before} -> {total_after} "
          f"({100 * (1 - total_after / total_before):.1f}% reduction)")

    assert total_before > 0
    # "significant reductions in bit error rate" — we require > 40%.
    assert total_after < 0.6 * total_before
