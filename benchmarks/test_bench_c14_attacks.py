"""C14 — §II-B: the attack gallery.

Success probability of each demonstrated attack class (kernel PTE
spray, Flip Feng Shui, Drammer, JavaScript) as module vulnerability
grows with vintage — the paper's point that the same circuit fault
powers a whole family of compromises.
"""

from conftest import run_once

from repro.experiments import attack_gallery
from repro.core.scenarios import full_scale_scenario
from repro.os import KernelExploitSimulation


def concrete_exploit(seed=1):
    """The Project-Zero chain executed at the data level (no probability
    model): spray real PTE pages into rows, hammer, decode, win."""
    scenario = full_scale_scenario("B", 2013.2)
    sim = KernelExploitSimulation(
        scenario.make_module(serial="concrete", seed=seed), frames=768
    )
    return sim.run(spray_fraction=0.5, pressure=scenario.attack_budget)


def test_bench_c14_concrete_exploit(benchmark, table):
    outcome = run_once(benchmark, concrete_exploit, seed=1)
    print()
    print(table(
        ["stage", "result"],
        [
            ["page-table frames sprayed", outcome.sprayed_frames],
            ["PTEs corrupted by hammering", len(outcome.corrupted_ptes)],
            ["PTEs retargeted to attacker page tables", len(outcome.exploitable_ptes)],
            ["kernel compromise", outcome.success],
        ],
        title="C14 — the Project-Zero chain, end to end at the data level",
    ))
    assert len(outcome.corrupted_ptes) > 0
    assert outcome.success


def test_bench_c14_attacks(benchmark, table):
    rows = run_once(benchmark, attack_gallery)
    print()
    print(table(
        ["vintage", "templates", "PTE spray", "Flip Feng Shui", "Drammer", "JavaScript"],
        [
            [r["date"], r["templates"], f"{r['pte_spray']:.3f}",
             f"usable={r['ffs_usable_templates']}", f"{r['drammer']:.3f}", f"{r['javascript']:.3f}"]
            for r in rows
        ],
        title="C14 — attack success probability vs module vintage",
    ))

    templates = [r["templates"] for r in rows]
    assert templates == sorted(templates)  # vulnerability grows with vintage
    newest = rows[-1]
    assert newest["pte_spray"] > 0.9
    assert newest["flip_feng_shui"]
    assert newest["drammer"] > 0.9
    oldest = rows[0]
    assert oldest["pte_spray"] < newest["pte_spray"]
