"""F1/C1 — Figure 1: RowHammer error rates vs manufacture date.

Regenerates the paper's only figure: errors per 10^9 cells for 129
modules from manufacturers A/B/C dated 2008-2014, plus the §II
aggregate claims (110/129 vulnerable, earliest vulnerable part 2010,
every 2012-2013 part vulnerable).
"""

from conftest import run_once

from repro.experiments import fig1_error_rates


def test_bench_f1_error_rates(benchmark, table):
    result = run_once(benchmark, fig1_error_rates, seed=0)

    rows = []
    years = range(2008, 2015)
    for mfr in ("A", "B", "C"):
        yearly = result["yearly_mean_rate"][mfr]
        rows.append([mfr] + [f"{yearly.get(y, 0.0):.3g}" for y in years])
    print()
    print(table([" "] + [str(y) for y in years], rows,
                title="Figure 1 — mean errors per 10^9 cells by manufacture year"))
    print(f"modules vulnerable: {result['modules_vulnerable']}/{result['modules_tested']}"
          f" (paper: 110/129)")
    print(f"earliest vulnerable: {result['earliest_vulnerable_date']} (paper: 2010)")
    print(f"all 2012-2013 vulnerable: {result['all_2012_2013_vulnerable']} (paper: True)")
    print(f"peak rates: " + ", ".join(f"{m}={result['peak_rate'][m]:.3g}" for m in "ABC"))

    # Shape claims.
    assert result["modules_vulnerable"] == 110
    assert 2010.0 <= result["earliest_vulnerable_date"] < 2011.0
    assert result["all_2012_2013_vulnerable"]
    assert result["peak_rate"]["B"] > result["peak_rate"]["A"] > result["peak_rate"]["C"]
    assert 1e5 < result["peak_rate"]["B"] < 5e6  # figure's top decade
    for mfr in "ABC":
        yearly = result["yearly_mean_rate"][mfr]
        assert yearly[2008] == 0.0 and yearly[2009] == 0.0
        assert yearly[2013] > yearly[2011]
