"""C7 — §II-C's seven-countermeasure discussion as one comparison table.

Every mitigation faces the same double-sided attack through the full
command pipeline; the table reports protection, performance overhead,
energy overhead, and dedicated storage — the axes on which the paper
argues PARA dominates.
"""

from conftest import run_once

from repro.analysis import MITIGATION_TABLE_HEADERS, report_rows
from repro.experiments import mitigation_comparison


def test_bench_c7_mitigations(benchmark, table):
    reports = run_once(benchmark, mitigation_comparison)
    print()
    print(table(
        list(MITIGATION_TABLE_HEADERS),
        report_rows(reports),
        title="C7 — mitigation comparison under double-sided hammering",
    ))

    baseline = reports[0]
    assert baseline.residual_flips > 0
    for report in reports[1:]:
        assert report.eliminates_all

    refresh = next(r for r in reports if r.name.startswith("refresh"))
    para = next(r for r in reports if r.name.startswith("para"))
    cra = next(r for r in reports if r.name.startswith("cra"))
    # The paper's ordering: refresh scaling pays heavily in energy and
    # bandwidth; PARA is cheap and stateless; CRA is cheap at runtime
    # but pays in dedicated storage.
    assert refresh.energy_overhead > 0.5
    assert para.energy_overhead < 0.1 and para.storage_bits == 0
    assert cra.storage_bits > 0
