"""Extension benches: the paper's forward-looking warnings, quantified.

* DDR4-era TRR samplers vs many-sided hammering (§II-B: "even
  state-of-the-art DDR4 DRAM chips are vulnerable");
* WARM write-hotness management for flash retention ([71]);
* deterministic Start-Gap vs a mapping-aware wear attacker (§III).
"""

from conftest import run_once

from repro.experiments import (
    raidr_rowhammer_interaction,
    trr_bypass_study,
    userlevel_attack_study,
)
from repro.flash.mitigations import warm_study
from repro.pcm import lifetime_under_mapping_aware_attack


def test_bench_ext_raidr_interaction(benchmark, table):
    """§III-A1's closing warning: a refresh-saving solution can open a
    new RowHammer window."""
    result = run_once(benchmark, raidr_rowhammer_interaction, seed=0)
    print()
    print(table(
        ["refresh policy", "flips after 4-window hammering"],
        [[name, flips] for name, flips in result["flips"].items()],
        title=(
            "Extension — RAIDR bins vs RowHammer "
            f"(threshold floor {result['threshold_floor']:.0f}, "
            f"per-window budget {result['budget_per_window']})"
        ),
    ))
    assert result["flips"]["uniform-64ms"] == 0
    assert result["flips"][f"raidr-bin2"] > 0


def test_bench_ext_userlevel_attack(benchmark, table):
    """§II-A end to end: what a user program can achieve through a cache."""
    result = run_once(benchmark, userlevel_attack_study, seed=0)
    rows = result["rows"] + [dict(result["eviction_on_weak_module"], strategy="eviction (weak module)")]
    print()
    print(table(
        ["strategy", "loads", "aggressor acts/window", "efficiency", "flips"],
        [[r["strategy"], r["loads"], f"{r['acts_per_window']:.0f}",
          f"{100 * r['efficiency']:.1f}%", r["flips"]] for r in rows],
        title="Extension — user-level hammer strategies, one refresh window each",
    ))
    by_name = {r["strategy"]: r for r in result["rows"]}
    assert by_name["naive"]["flips"] == 0                 # caches absorb plain loads
    assert by_name["flush"]["flips"] > 0                  # CLFLUSH loop flips
    assert by_name["eviction"]["target_activations"] < by_name["flush"]["target_activations"] / 3
    assert result["eviction_on_weak_module"]["flips"] > 0  # JS-style works on weaker parts


def test_bench_ext_trr_bypass(benchmark, table):
    rows = run_once(benchmark, trr_bypass_study, n_pairs_list=(1, 2, 4, 8), tracker_entries=2, seed=0)
    print()
    print(table(
        ["aggressor pairs", "per-victim pressure", "targeted refreshes", "flips"],
        [[r["n_pairs"], r["per_victim_pressure"], r["targeted_refreshes"], r["flips"]] for r in rows],
        title="Extension — many-sided hammering vs a 2-entry TRR sampler (future node)",
    ))
    assert rows[0]["flips"] == 0                       # within sampler capacity: safe
    assert any(r["flips"] > 0 for r in rows[1:])       # beyond it: bypassed


def test_bench_ext_warm(benchmark, table):
    outcomes = run_once(benchmark, warm_study, wordlines=4, cells=1024, tolerance=1000)
    print()
    print(table(
        ["policy", "hot lifetime", "cold lifetime", "device lifetime", "refresh wear"],
        [[o.policy, o.hot_lifetime_pe, o.cold_lifetime_pe, o.device_lifetime_pe,
          f"{100 * o.refresh_wear_fraction:.0f}%"] for o in outcomes.values()],
        title="Extension — WARM write-hotness-aware retention management",
    ))
    assert outcomes["fcr"].device_lifetime_pe > outcomes["baseline"].device_lifetime_pe
    assert outcomes["warm+fcr"].refresh_wear_fraction < outcomes["fcr"].refresh_wear_fraction


def test_bench_ext_fleet(benchmark, table):
    """Fleet-level exposure from the vintage mix (§III field-study context)."""
    from repro.experiments import fleet_study

    result = run_once(benchmark, fleet_study, seed=0, servers=1200)
    print()
    print(table(
        ["refresh patch", "vulnerable fraction", "compromised servers"],
        [[f"{r['multiplier']:g}x", f"{100 * r['vulnerable_fraction']:.1f}%",
          r["compromised_servers"]] for r in result["patch_rollout"]],
        title="Extension — 2014-era fleet exposure vs deployed patch",
    ))
    rollout = result["patch_rollout"]
    assert result["vulnerable_fraction"] > 0.8          # recent-stock fleets are exposed
    assert rollout[-1]["vulnerable_fraction"] < rollout[0]["vulnerable_fraction"] / 2


def pcm_chase(seed=0):
    plain = lifetime_under_mapping_aware_attack(randomize=False, seed=seed)
    randomized = lifetime_under_mapping_aware_attack(randomize=True, seed=seed)
    return {"plain": plain, "randomized": randomized}


def test_bench_ext_pcm_chase(benchmark, table):
    result = run_once(benchmark, pcm_chase, seed=1)
    print()
    print(table(
        ["start-gap variant", "attacker writes survived"],
        [["deterministic (chaseable)", f"{result['plain']:.3g}"],
         ["with secret randomization", f"{result['randomized']:.3g}"]],
        title="Extension — mapping-aware wear attack on Start-Gap",
    ))
    assert result["randomized"] > 3 * result["plain"]
