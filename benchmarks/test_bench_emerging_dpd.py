"""Extension benches: data-pattern dependence and emerging memories.

* DPD of disturbance errors (the ISCA 2014 observation the paper's
  footnote 3 summarizes);
* §III's emerging-memory warning quantified: STT-MRAM error scaling
  and the RRAM crossbar half-select RowHammer analogue.
"""

from conftest import run_once

from repro.experiments import emerging_memory_study, pattern_dependence_study


def test_bench_pattern_dependence(benchmark, table):
    rows = run_once(benchmark, pattern_dependence_study, victims=200, seed=0)
    print()
    print(table(
        ["data pattern", "flips"],
        [[r["pattern"], r["flips"]] for r in rows],
        title="Extension — data-pattern dependence of disturbance errors",
    ))
    by_name = {r["pattern"]: r["flips"] for r in rows}
    # Stripe-family fills couple hardest; solid fills are mildest.
    assert by_name["rowstripe"] > by_name["random"] > by_name["solid1"]
    assert by_name["checkered"] > by_name["colstripe"]


def test_bench_emerging_memories(benchmark, table):
    result = run_once(benchmark, emerging_memory_study, seed=0)
    print()
    print(table(
        ["thermal stability (delta)", "read-disturb errors (1M reads)", "retention errors (10y)"],
        [[r["delta"], f"{r['read_disturb_errors']:.3g}", f"{r['retention_errors_10y']:.3g}"]
         for r in result["stt_scaling"]],
        title="Extension — STT-MRAM error scaling with density (256K cells)",
    ))
    print(table(
        ["crossbar accesses to one cell", "shared-line victims", "victims confined to shared lines"],
        [[r["accesses"], r["victims"], r["all_on_shared_lines"]] for r in result["rram_hammer"]],
        title="Extension — RRAM half-select disturb (the crossbar RowHammer)",
    ))

    stt = result["stt_scaling"]
    # Shrinking delta (denser cells) raises both error classes together.
    assert stt[-1]["read_disturb_errors"] > stt[0]["read_disturb_errors"]
    assert stt[-1]["retention_errors_10y"] > stt[0]["retention_errors_10y"]
    rram = result["rram_hammer"]
    assert rram[-1]["victims"] > 0
    assert all(r["all_on_shared_lines"] for r in rram)
