"""§II-C / §IV — the system-memory co-design argument, quantified.

The paper's prescription is an intelligent, configurable memory
controller.  Two of its cited wins, reproduced: AL-DRAM-style latency
profiling and online content-aware retention profiling; plus the
interleaving counterpart of the ECC discussion.
"""

from conftest import run_once

from repro.experiments import codesign_study
from repro.ecc import SECDED_72_64, compare_interleaving
from repro.ecc.injection import inject_clustered
from repro.utils.rng import derive_rng


def test_bench_codesign(benchmark, table):
    result = run_once(benchmark, codesign_study, seed=0)
    print()
    print(table(
        ["module", "safe tRCD (ns)", "spec (ns)", "speedup"],
        [[r["module"], f"{r['safe_trcd_ns']:.2f}", r["spec_trcd_ns"],
          f"{100 * r['speedup_fraction']:.1f}%"] for r in result["aldram_rows"][:6]],
        title="Co-design — AL-DRAM latency profiling (first 6 modules)",
    ))
    print(f"mean latency headroom: {100 * result['aldram_mean_speedup']:.1f}%")
    print(table(
        ["profiler", "DPD cells found", "field escapes"],
        [["static campaign", result["static_discovered"], result["static_escapes"]],
         ["online (content-aware)", result["online_discovered"], result["online_escapes"]]],
        title="Co-design — online retention profiling",
    ))

    assert result["aldram_mean_speedup"] > 0.10
    assert result["static_escapes"] > 0
    assert result["online_escapes"] == 0


def interleave_experiment(seed=0):
    flips = inject_clustered(2500, 1 << 20, derive_rng(seed, "bench-interleave"))
    return compare_interleaving(SECDED_72_64, flips, degrees=(1, 2, 4, 8), seed=seed)


def test_bench_codesign_interleaving(benchmark, table):
    results = run_once(benchmark, interleave_experiment, seed=0)
    print()
    print(table(
        ["interleave degree", "erroneous words", "uncorrected by SECDED"],
        [[d, ev.words_total, ev.uncorrected_words] for d, ev in results.items()],
        title="Co-design — bit interleaving vs clustered RowHammer flips",
    ))
    uncorrected = [results[d].uncorrected_words for d in (1, 2, 4, 8)]
    assert uncorrected == sorted(uncorrected, reverse=True)
    assert uncorrected[-1] < uncorrected[0] / 1.5
