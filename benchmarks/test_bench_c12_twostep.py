"""C12 — §III-B: two-step programming vulnerabilities (HPCA 2017).

Disturbance during the LSB->MSB exposure window corrupts the internal
partial read and thus the stored data; the proposed hardening
(controller-side LSB buffering) removes the exposure and buys a
lifetime increase (paper: ~16%).
"""

from conftest import run_once

from repro.experiments import twostep_lifetime_study, twostep_study


def test_bench_c12_exposure(benchmark, table):
    result = run_once(benchmark, twostep_study, pe_cycles=8000, seed=0)
    print()
    print(table(
        ["configuration", "LSB errors at finalization"],
        [
            ["exposed window (reads + neighbor writes)", result["exposed_errors"]],
            ["mitigated (LSB buffering)", result["mitigated_errors"]],
            ["control (no window)", result["control_errors"]],
        ],
        title="C12 — two-step programming exposure (1X-nm, 8K cycles)",
    ))
    assert result["exposed_errors"] > 10 * max(result["mitigated_errors"], 1)
    assert result["mitigated_errors"] <= result["control_errors"] + 50


def test_bench_c12_lifetime(benchmark):
    result = run_once(benchmark, twostep_lifetime_study, seed=0)
    gain = result["lifetime_gain_fraction"]
    print(f"\nC12 — lifetime gain from hardening: {100 * gain:.1f}% (paper: ~16%)")
    assert 0.05 < gain < 0.6
