"""C4 — §II-C: SECDED ECC is not enough.

"simple SECDED ECC ... is not enough to prevent all RowHammer errors,
as some cache blocks experience two or more bit flips".
"""

from conftest import run_once

from repro.experiments import ecc_study
from repro.ecc import DecodeStatus, SECDED_72_64, campaign


def test_bench_c4_ecc(benchmark, table):
    result = run_once(benchmark, ecc_study, victims=400, seed=0)

    print()
    print(table(
        ["flips per 64-bit word", "words"],
        [[k, v] for k, v in sorted(result["histogram"].items())],
        title="C4 — flip multiplicity of hammer-induced errors",
    ))
    print(f"words with >=2 flips: {100 * result['multi_flip_fraction']:.2f}%")
    print(table(
        ["code", "overhead", "uncorrected", "silent corruptions"],
        [
            [e.code_name, f"{100 * e.overhead_fraction:.1f}%",
             e.evaluation.uncorrected_words, e.evaluation.silent_corruptions]
            for e in result["ladder"]
        ],
        title="C4 — ECC ladder vs the measured flip population",
    ))

    assert any(flips >= 2 for flips in result["histogram"])  # the killer class exists
    secded = next(e for e in result["ladder"] if "secded" in e.code_name)
    assert secded.evaluation.uncorrected_words > 0  # SECDED insufficient
    parity = next(e for e in result["ladder"] if e.code_name == "parity")
    assert secded.evaluation.uncorrected_words < parity.evaluation.uncorrected_words


def test_bench_c4_injection_processes(benchmark, table):
    """Same raw flip budget, different spatial processes: SECDED was
    provisioned for uniform strikes; RowHammer's clustered flips defeat
    it far more often."""
    results = run_once(benchmark, campaign, SECDED_72_64, 3000, seed=0)
    print()
    print(table(
        ["flip process", "erroneous words", "uncorrected", "silent corruptions"],
        [[name, ev.words_total, ev.uncorrected_words, ev.silent_corruptions]
         for name, ev in results.items()],
        title="C4 — SECDED vs flip spatial process (3000 flips in 1 Mib)",
    ))
    assert results["clustered"].uncorrected_words > results["uniform"].uncorrected_words
