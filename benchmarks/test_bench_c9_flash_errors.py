"""C9 — §III-A2: flash error mix vs wear, and FCR lifetime extension.

"the dominant source of errors in flash memory are data retention
errors" (at wear), and refresh "greatly improves the lifetime of
modern MLC NAND flash memory".
"""

from conftest import run_once

from repro.experiments import fcr_study, flash_error_sweep, vref_tuning_study


def test_bench_c9_vref_tuning(benchmark, table):
    """The SSD controller's first-line retention fix: re-centering the
    read references after the distributions shift (read-retry)."""
    result = run_once(benchmark, vref_tuning_study, seed=0)
    print()
    print(table(
        ["read references", "raw errors (15K cycles, 1 year)"],
        [[str(tuple(round(r, 2) for r in result["factory_refs"])), result["factory_errors"]],
         [str(tuple(round(r, 2) for r in result["tuned_refs"])), result["tuned_errors"]]],
        title="C9 — read-reference tuning vs retention errors",
    ))
    print(f"error reduction: {100 * result['reduction_fraction']:.1f}%")
    assert result["reduction_fraction"] > 0.3


def test_bench_c9_error_breakdown(benchmark, table):
    rows = run_once(benchmark, flash_error_sweep)
    print()
    print(table(
        ["P/E cycles", "wear+interference", "retention (1yr)", "read disturb (20K)", "dominant"],
        [[r["pe_cycles"], r["wear_and_interference"], r["retention"], r["read_disturb"], r["dominant"]]
         for r in rows],
        title="C9 — raw error breakdown vs wear",
    ))
    worn = [r for r in rows if r["pe_cycles"] >= 8000]
    assert all(r["dominant"] == "retention" for r in worn)
    retention = [r["retention"] for r in rows]
    assert retention == sorted(retention)  # grows monotonically with wear


def test_bench_c9_fcr(benchmark, table):
    result = run_once(benchmark, fcr_study, seed=0)
    print()
    print(table(
        ["refresh interval (days)", "lifetime (P/E cycles)", "refresh wear (PE/yr)"],
        [[p.refresh_interval_days if p.refresh_interval_days is not None else "none",
          p.raw_lifetime_pe, f"{p.refresh_wear_per_year:.0f}"]
         for p in result["points"]],
        title="C9 — Flash Correct-and-Refresh lifetime sweep",
    ))
    print(f"lifetime multiplier at best refresh: {result['lifetime_multiplier']:.1f}x")

    lifetimes = [p.raw_lifetime_pe for p in result["points"]]
    assert lifetimes == sorted(lifetimes)          # shorter interval, longer life
    assert result["lifetime_multiplier"] > 3.0     # order-of-magnitude class gain
