"""C11 — §III-B: cell-to-cell variation enables probabilistic recovery.

Read-disturb susceptibility variation allows estimating original
values after disturb-induced errors; Neighbor-Cell Assisted Correction
corrects interference errors using the neighboring page's values.
"""

from conftest import run_once

from repro.flash import FlashBlock, MLC_1XNM, program_block_shadow
from repro.flash.mitigations import correct_wordline, read_disturb_recovery


def recovery_experiments(seed=0):
    rd_block = FlashBlock(wordlines=8, cells=2048, seed=seed)
    rd_block.set_pe_cycles(8_000)
    program_block_shadow(rd_block, seed=seed)
    rd_block.apply_read_disturb(150_000)
    rd = [read_disturb_recovery(rd_block, wl, seed=seed) for wl in range(1, 7)]

    nac_block = FlashBlock(wordlines=8, cells=4096, params=MLC_1XNM, seed=seed + 1)
    nac_block.set_pe_cycles(15_000)
    program_block_shadow(nac_block, seed=seed + 1)
    nac = [correct_wordline(nac_block, wl, seed=seed + 1) for wl in range(1, 6)]
    return rd, nac


def test_bench_c11_nac(benchmark, table):
    rd, nac = run_once(benchmark, recovery_experiments)

    def totals(outcomes):
        return sum(o.errors_before for o in outcomes), sum(o.errors_after for o in outcomes)

    rd_before, rd_after = totals(rd)
    nac_before, nac_after = totals(nac)
    print()
    print(table(
        ["mechanism", "errors before", "errors after", "reduction"],
        [
            ["read-disturb recovery (150K reads)", rd_before, rd_after,
             f"{100 * (1 - rd_after / rd_before):.1f}%"],
            ["NAC (1X-nm, 15K cycles)", nac_before, nac_after,
             f"{100 * (1 - nac_after / nac_before):.1f}%"],
        ],
        title="C11 — variation-based recovery mechanisms",
    ))

    assert rd_after < rd_before
    assert nac_after < nac_before
