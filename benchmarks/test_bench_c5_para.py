"""C5 — §II-C: PARA "eliminates the RowHammer vulnerability, providing
much higher reliability guarantees than modern hard disks today, while
requiring no storage cost and having negligible performance and energy
overheads."

Closed-form reliability analysis plus a scaled controller-path
simulation cross-check.
"""

from conftest import run_once

from repro.analysis.reliability import HARD_DISK_AFR_TYPICAL
from repro.experiments import para_controller_check, para_reliability


def test_bench_c5_para_analysis(benchmark, table):
    result = run_once(benchmark, para_reliability)
    print()
    print(table(
        ["p", "log10 failures/yr", "decades safer than disk", "perf overhead"],
        [
            [f"{row['p']:g}", f"{row['log10_failures_per_year']:.1f}",
             f"{row['log10_margin_vs_disk']:.1f}", f"{100 * row['perf_overhead']:.2f}%"]
            for row in result["rows"]
        ],
        title=f"C5 — PARA failure rates (disk AFR baseline {HARD_DISK_AFR_TYPICAL})",
    ))
    print(f"p meeting 1e-15 failures/yr at HC=139K: {result['recommended_p_1e-15']:.2e}")

    for row in result["rows"]:
        assert row["log10_margin_vs_disk"] > 0     # always safer than a disk
        assert row["perf_overhead"] < 0.01         # "negligible"
    assert result["recommended_p_1e-15"] < 0.002


def test_bench_c5_para_simulation(benchmark, table):
    result = run_once(benchmark, para_controller_check)
    print()
    print(table(
        ["system", "flips", "time overhead"],
        [
            ["unprotected", result["bare_flips"], "-"],
            ["para", result["para_flips"], f"{100 * result['para_overhead_time']:.2f}%"],
        ],
        title="C5 — scaled controller-path cross-check",
    ))
    assert result["bare_flips"] > 0
    assert result["para_flips"] == 0
    assert result["para_overhead_time"] < 0.08
