"""Telemetry overhead benches.

Two claims: an instrumented workload with telemetry *enabled* still
finishes in simulator-scale time (and its counters agree with the
experiment's own payload), and the disabled-by-default guards cost
≤5% on a representative hot loop — the "near-zero when off" contract
from :mod:`repro.telemetry.runtime`.
"""

import time

import numpy as np

from conftest import run_once
from repro.experiments import execute_job
from repro.telemetry import MetricsRegistry, PhysicsCollector
from repro.telemetry import events as stream_events
from repro.telemetry import physics as phys
from repro.telemetry import runtime as telem

#: One sensed row's worth of work per iteration — the granularity at
#: which the simulators consult the telemetry guards.  A full-scale row
#: is ``row_bytes * 8`` = 8192 cells.
_ROW = np.arange(8192, dtype=np.uint8)


def _hot_loop(iters: int, guarded: bool) -> int:
    """A bank-shaped hot loop: one row-sized numpy op per iteration,
    optionally followed by the exact guard idiom the instrument sites
    use (one module-attribute read + falsy branch each)."""
    total = 0
    for _ in range(iters):
        total += int(_ROW.sum())
        if guarded:
            if telem.metrics_on:
                telem.counter("bench_ops_total").inc()
            if telem.trace_on:
                telem.trace("bench_op")
            if phys.physics_on:
                phys.get_collector().record_activation(0, 0)
            if stream_events.stream_on:
                stream_events.sink().tick()
    return total


def _best_interleaved(iters: int, repeats: int = 15):
    """Min-of-repeats for both variants, measured back-to-back each
    round so clock-frequency drift hits them equally."""
    bare = guarded = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _hot_loop(iters, False)
        t1 = time.perf_counter()
        _hot_loop(iters, True)
        t2 = time.perf_counter()
        bare = min(bare, t1 - t0)
        guarded = min(guarded, t2 - t1)
    return bare, guarded


def test_perf_disabled_guard_overhead_under_5pct():
    """The whole point of the guard flags: with telemetry off, the
    instrumented loop runs within 5% of the identical bare loop."""
    telem.disable_all()
    _hot_loop(1_000, True), _hot_loop(1_000, False)  # warm up
    bare, guarded = _best_interleaved(10_000)
    overhead = guarded / bare - 1.0
    print(f"\ndisabled-telemetry overhead: {overhead:+.2%} "
          f"(bare {bare*1e3:.1f} ms, guarded {guarded*1e3:.1f} ms)")
    assert overhead <= 0.05


def test_perf_rowhammer_basic_with_metrics(benchmark):
    """End-to-end: the telemetry cross-check experiment with metrics on."""
    result = run_once(benchmark, execute_job, "rowhammer_basic",
                      params={"victims": 16}, seed=0, collect_metrics=True)
    merged = MetricsRegistry.from_snapshot(result.metrics)
    assert merged.total("dram_activations_total") == result.payload["activations"]
    assert merged.total("dram_refreshes_total") == result.payload["refreshes"]
    assert merged.total("dram_bit_flips_total") == result.payload["bit_flips"]


def test_perf_rowhammer_basic_with_physics(benchmark):
    """End-to-end with the physics layer on: the heat map's flip total
    must equal the experiment's own payload count."""
    result = run_once(benchmark, execute_job, "rowhammer_basic",
                      params={"victims": 16}, seed=0, collect_physics=True)
    collector = PhysicsCollector.from_snapshot(result.physics)
    assert collector.total_flips() == result.payload["bit_flips"]
    assert collector.total_provenance_flips() == result.payload["bit_flips"]
    assert collector.total_activations() == result.payload["activations"]
