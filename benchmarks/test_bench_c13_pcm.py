"""C13 — §III: emerging-memory endurance as a security problem.

A malicious pinned-write workload exhausts an unprotected PCM line's
endurance almost immediately; Start-Gap wear leveling (the paper's
citation [82]) spreads the damage and restores near-ideal lifetime.
"""

from conftest import run_once

from repro.experiments import pcm_study


def test_bench_c13_pcm(benchmark, table):
    result = run_once(benchmark, pcm_study, seed=0)
    print()
    print(table(
        ["configuration", "attacker writes survived"],
        [
            ["no wear leveling", f"{result['bare_lifetime_writes']:.3g}"],
            ["start-gap", f"{result['startgap_lifetime_writes']:.3g}"],
            ["start-gap + randomization", f"{result['startgap_rand_lifetime_writes']:.3g}"],
        ],
        title="C13 — PCM lifetime under a pinned-write wear attack",
    ))
    print(f"improvement: {result['improvement_factor']:.1f}x")
    assert result["improvement_factor"] > 10
