"""C8 — §III-A1: DRAM data-retention failures.

DPD and VRT make retention profiling fundamentally unreliable ("some
retention errors can easily slip into the field"); RAIDR-style
multi-rate refresh inherits the escapes; AVATAR's scrub-and-upgrade
recovers the escape rate over deployment time.
"""

from conftest import run_once

from repro.experiments import retention_study


def test_bench_c8_retention(benchmark, table):
    result = run_once(benchmark, retention_study)
    print()
    print(table(
        ["quantity", "value"],
        [
            ["cells profiled as failing", result["discovered"]],
            ["profiling escapes (DPD/VRT)", result["profiling_escapes"]],
            ["RAIDR refresh savings", f"{100 * result['raidr_savings_fraction']:.1f}%"],
            ["RAIDR bin counts (64/128/256 ms)", result["raidr_bin_counts"]],
            ["RAIDR runtime escape cells", result["raidr_escape_cells"]],
            ["AVATAR escapes by day", result["avatar_daily_escapes"]],
            ["refresh ops/s base/RAIDR/AVATAR",
             f"{result['baseline_refresh_rate']:.0f} / {result['raidr_refresh_rate']:.0f}"
             f" / {result['avatar_final_refresh_rate']:.0f}"],
        ],
        title="C8 — retention profiling escapes and multi-rate refresh",
    ))

    assert result["profiling_escapes"] > 0           # testing is defeatable
    assert result["raidr_savings_fraction"] > 0.3    # refresh savings real
    assert result["raidr_escape_cells"] > 0          # ... but escapes persist
    daily = result["avatar_daily_escapes"]
    assert daily[-1] <= daily[0]                     # AVATAR decays the rate
    assert sum(daily[2:]) < max(1, daily[0]) * (len(daily) - 2)
