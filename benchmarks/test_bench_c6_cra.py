"""C6 — §II-C: counter-based aggressor identification costs storage.

"accurately identifying a row as a hammered row requires keeping track
of access counters for a large number of rows ... leading to very
large hardware area and power consumption".
"""

from conftest import run_once

from repro.experiments import cra_tradeoff


def test_bench_c6_cra(benchmark, table):
    result = run_once(benchmark, cra_tradeoff)
    print()
    print(table(
        ["variant", "residual flips", "detections", "storage bits (scaled module)"],
        [
            ["full" if run["table_entries"] is None else f"table-{run['table_entries']}",
             run["flips"], run["detections"], run["storage_bits"]]
            for run in result["runs"]
        ],
        title="C6 — CRA protection vs counter storage",
    ))
    print(table(
        ["variant", "threshold", "entries", "storage bits (2 GiB module)"],
        [[r["variant"], r["threshold"], r["table_entries"], r["storage_bits"]]
         for r in result["full_scale_storage"]],
        title="C6 — full-scale storage bill",
    ))

    for run in result["runs"]:
        assert run["flips"] == 0 and run["detections"] > 0
    full = next(r for r in result["full_scale_storage"] if r["variant"] == "full")
    # Full per-row counters: megabits of dedicated SRAM — the overhead
    # §II-C criticizes.
    assert full["storage_bits"] > 4_000_000
