"""C2 — §II-A: reads and writes both violate memory isolation.

"(i) a read access should not modify data at any address and (ii) a
write access should modify data only at the address that it is
supposed to write to ... all of which occur in rows other than the one
that is being accessed."
"""

from conftest import run_once

from repro.experiments import isolation_violations


def test_bench_c2_invariants(benchmark, table):
    result = run_once(benchmark, isolation_violations, seed=0, reads=2_600_000)
    read_report = result["read"]
    write_report = result["write"]

    print()
    print(table(
        ["access type", "self corrupted", "other rows corrupted", "bits flipped"],
        [
            ["read loop", read_report.accessed_row_changed,
             len(read_report.corrupted_rows), read_report.total_corrupted_bits],
            ["write loop", write_report.accessed_row_changed,
             len(write_report.corrupted_rows), write_report.total_corrupted_bits],
        ],
        title="C2 — memory-isolation invariant violations",
    ))

    # Both access types induce errors; never in the accessed row itself.
    assert result["read_violated"] and result["write_violated"]
    assert result["read_self_clean"] and result["write_self_clean"]
    assert all(abs(r - read_report.accessed_row) <= 2 for r in read_report.corrupted_rows)
