"""C3 — §II-C: refresh-rate scaling, the deployed immediate mitigation.

"Our paper shows that the refresh rate needs to be increased by 7X if
we want to eliminate all RowHammer-induced errors we saw in our tests"
— plus the energy/performance price the paper warns about.
"""

from conftest import run_once

from repro.experiments import refresh_multiplier_sweep


def test_bench_c3_refresh(benchmark, table):
    result = run_once(benchmark, refresh_multiplier_sweep)
    rows = [
        [
            f"{row['multiplier']:.0f}x",
            row["errors"],
            f"{row['errors_per_billion']:.3g}",
            row["budget"],
            f"{100 * row['bandwidth_overhead']:.1f}%",
            f"{row['refresh_energy_factor']:.0f}x",
        ]
        for row in result["rows"]
    ]
    print()
    print(table(
        ["refresh", "errors", "errs/1e9", "attack budget", "bw overhead", "refresh energy"],
        rows,
        title="C3 — errors and cost vs refresh multiplier (B-2013 module)",
    ))
    print(f"exact elimination multiplier: {result['exact_elimination_multiplier']:.2f} (paper: 7x)")

    by_k = {row["multiplier"]: row["errors"] for row in result["rows"]}
    errors = [row["errors"] for row in result["rows"]]
    assert errors == sorted(errors, reverse=True)
    assert by_k[1.0] > 1e6                       # unprotected: millions of flips
    assert by_k[7.0] < by_k[1.0] / 1000          # 7x: >1000-fold reduction
    assert by_k[8.0] == 0                        # first integral multiplier to eliminate
    assert 6.5 < result["exact_elimination_multiplier"] < 7.5


def test_bench_c3_refresh_burden(benchmark, table):
    """The context for "refresh is already a significant burden": its
    energy/bandwidth share grows steeply with device density, which is
    why 7x refresh is a painful mitigation."""
    from repro.analysis import refresh_burden_vs_density

    rows = run_once(benchmark, refresh_burden_vs_density)
    print()
    print(table(
        ["rows per bank", "refresh energy share", "bandwidth overhead"],
        [[r["rows"], f"{100 * r['refresh_energy_share']:.1f}%",
          f"{100 * r['bandwidth_overhead']:.1f}%"] for r in rows],
        title="C3 — refresh burden vs device density (1x refresh!)",
    ))
    shares = [r["refresh_energy_share"] for r in rows]
    assert shares == sorted(shares)
    assert shares[-1] > 0.5  # dense parts: refresh dominates energy
